#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <sstream>
#include <vector>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "bench_util.hpp"
#include "graph/mutation.hpp"
#include "io/instance_io.hpp"
#include "lcl/registry.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "runtime/batched_execution.hpp"
#include "runtime/parallel_runner.hpp"
#include "runtime/reference_execution.hpp"
#include "runtime/view_cache.hpp"
#include "stats/growth.hpp"

namespace volcal::check {
namespace {

CheckResult fail(std::string msg) { return {false, std::move(msg)}; }

std::string at_start(const char* what, std::size_t i, NodeIndex start) {
  std::ostringstream os;
  os << what << " (start slot " << i << ", node " << start << ")";
  return os.str();
}

// --- bench::sampled_starts contract ----------------------------------------

CheckResult check_sampled_starts(NodeIndex n, NodeIndex count,
                                 const std::vector<NodeIndex>& starts) {
  if (starts.empty()) return fail("sampled_starts: empty sample for n > 0, count > 0");
  if (starts.size() > static_cast<std::size_t>(count)) {
    return fail("sampled_starts: " + std::to_string(starts.size()) +
                " starts exceed requested count " + std::to_string(count));
  }
  if (starts.front() != 0) return fail("sampled_starts: sample does not begin at node 0");
  if (count == 1 && starts != std::vector<NodeIndex>{0}) {
    return fail("sampled_starts: count == 1 must yield exactly {0} (got " +
                std::to_string(starts.size()) + " starts)");
  }
  if (count >= 2 && n >= 2 && starts.back() != n - 1) {
    return fail("sampled_starts: count >= 2 must cover the last node");
  }
  for (std::size_t i = 0; i < starts.size(); ++i) {
    if (starts[i] >= n) return fail("sampled_starts: start out of range");
    if (i > 0 && starts[i] <= starts[i - 1]) {
      return fail("sampled_starts: sample not strictly increasing");
    }
  }
  return {};
}

// --- RandomTape invariants ---------------------------------------------------

CheckResult check_tape(const IdAssignment& ids, const FuzzCase& c, NodeIndex n) {
  RandomTape tape(ids, c.tape_seed, c.model);
  const NodeIndex probes[] = {0, n / 2, n - 1};
  const std::uint64_t positions[] = {0, 1, 63, 64, 65, 0x9000};

  // Words are 64-bit windows of the bit stream: bit j of word(i) is bit i+j.
  // (The historical implementation hashed words on a shifted bit position, so
  // words aliased far-away bits and adjacent words were inconsistent.)
  for (const NodeIndex v : probes) {
    for (const std::uint64_t i : positions) {
      const std::uint64_t w = tape.word_value(v, i);
      for (const std::uint64_t j : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{17},
                                    std::uint64_t{63}}) {
        if (((w >> j) & 1) != static_cast<std::uint64_t>(tape.bit_value(v, i + j))) {
          return fail("tape: bit " + std::to_string(j) + " of word_value(v=" +
                      std::to_string(v) + ", i=" + std::to_string(i) +
                      ") disagrees with bit_value at position " + std::to_string(i + j));
        }
      }
      const std::uint64_t next = tape.word_value(v, i + 1);
      const std::uint64_t expect =
          (w >> 1) | (static_cast<std::uint64_t>(tape.bit_value(v, i + 64)) << 63);
      if (next != expect) {
        return fail("tape: word_value(v, i+1) is not the bit stream shifted by one at i=" +
                    std::to_string(i));
      }
    }
  }

  // Model disciplines (§7.4).
  if (c.model == RandomnessModel::Public && n >= 2) {
    for (const std::uint64_t i : positions) {
      if (tape.bit_value(0, i) != tape.bit_value(n - 1, i)) {
        return fail("tape: public randomness must be node-independent");
      }
    }
  }
  if (c.model == RandomnessModel::Private && n >= 2) {
    bool distinct = false;
    for (std::uint64_t i = 0; i < 4 && !distinct; ++i) {
      distinct = tape.word_value(0, i) != tape.word_value(n - 1, i);
    }
    if (!distinct) return fail("tape: private per-node streams are identical");
  }
  if (c.model == RandomnessModel::Secret && n >= 2) {
    bool threw = false;
    try {
      (void)tape.bit(0, n - 1, 0);
    } catch (const std::logic_error&) {
      threw = true;
    }
    if (!threw) return fail("tape: secret model allowed a cross-node read");
  }

  // Accounting: a word consumes its true 64 positions, bits one position;
  // the high-water mark is over *accessed* positions.
  {
    RandomTape acct(ids, c.tape_seed + 1, c.model);
    (void)acct.word(0, 0, 10);
    if (acct.max_bits_used_anywhere() != 74) {
      return fail("tape: word at position 10 should account 74 bits, got " +
                  std::to_string(acct.max_bits_used_anywhere()));
    }
    (void)acct.bit(0, 0, 100);
    if (acct.max_bits_used_anywhere() != 101) {
      return fail("tape: bit at position 100 should raise the high-water mark to 101");
    }
  }

  // ScopedUsage ledgers merge to exactly the serial accounting.
  {
    RandomTape serial(ids, c.tape_seed + 2, c.model);
    RandomTape scoped(ids, c.tape_seed + 2, c.model);
    auto read_all = [&](RandomTape& t) {
      for (const NodeIndex v : probes) {
        (void)t.bit(v, v, 7);
        (void)t.word(v, v, 40);
      }
    };
    read_all(serial);
    {
      RandomTape::ScopedUsage usage(scoped);
      read_all(scoped);
    }
    for (const NodeIndex v : probes) {
      const NodeIndex key = c.model == RandomnessModel::Public ? 0 : v;
      if (serial.bits_used(key) != scoped.bits_used(key)) {
        return fail("tape: ScopedUsage merge disagrees with serial accounting at node " +
                    std::to_string(key));
      }
    }
  }
  return {};
}

// --- stats::summarize cross-check -------------------------------------------

CheckResult check_summarize(const std::vector<std::int64_t>& per_start) {
  std::vector<double> values(per_start.begin(), per_start.end());
  const stats::Summary s = stats::summarize(values);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cnt = sorted.size();
  if (s.count != cnt) return fail("summarize: wrong count");
  double sum = 0;
  for (const double v : sorted) sum += v;
  const double median = cnt % 2 == 1 ? sorted[cnt / 2]
                                     : 0.5 * (sorted[cnt / 2 - 1] + sorted[cnt / 2]);
  const auto nearest_rank = [&](double q) {
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(cnt)));
    return sorted[std::max<std::size_t>(rank, 1) - 1];
  };
  const double p95 = nearest_rank(0.95);
  const double p99 = nearest_rank(0.99);
  auto close = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  if (!close(s.min, sorted.front()) || !close(s.max, sorted.back())) {
    return fail("summarize: min/max disagree with sorted data");
  }
  if (!close(s.mean, sum / static_cast<double>(cnt))) {
    return fail("summarize: mean disagrees with independent recomputation");
  }
  if (!close(s.median, median)) {
    return fail("summarize: median disagrees with midpoint-of-even-count recomputation");
  }
  if (!close(s.p95, p95)) {
    return fail("summarize: p95 disagrees with nearest-rank recomputation");
  }
  if (!close(s.p99, p99)) {
    return fail("summarize: p99 disagrees with nearest-rank recomputation");
  }
  return {};
}

// --- trace invariants + reference differential ------------------------------

CheckResult check_trace_invariants(const obs::ExecutionTrace& t, std::int64_t budget,
                                   std::size_t slot) {
  std::int64_t running = 1;  // the start node is visited before any probe
  for (std::size_t e = 0; e < t.events.size(); ++e) {
    const obs::TraceEvent& ev = t.events[e];
    if (ev.volume < running || ev.volume > running + 1) {
      return fail(at_start("trace: running volume not monotone (steps of 0 or 1)", slot,
                           t.start));
    }
    running = ev.volume;
    if (ev.layer < 0 || ev.layer > t.final_distance) {
      return fail(at_start("trace: event layer outside [0, final_distance]", slot, t.start));
    }
    if (ev.layer == 0 && ev.found != t.start) {
      return fail(at_start("trace: only the start node may sit at layer 0", slot, t.start));
    }
  }
  if (!t.events.empty() && t.events.back().volume != t.final_volume) {
    return fail(at_start("trace: final volume differs from the last probe's", slot, t.start));
  }
  const std::int64_t expected_queries =
      static_cast<std::int64_t>(t.events.size()) + (t.truncated ? 1 : 0);
  if (t.query_count != expected_queries) {
    return fail(at_start("trace: query_count != events + truncating probe", slot, t.start));
  }
  if (t.truncated) {
    if (budget <= 0) return fail(at_start("trace: truncation without a budget", slot, t.start));
    if (t.final_volume != budget) {
      return fail(at_start("trace: truncated execution must stop exactly at the budget", slot,
                           t.start));
    }
    if (t.truncated_at_node == kNoNode || t.truncated_at_port == kNoPort) {
      return fail(at_start("trace: truncation point not recorded", slot, t.start));
    }
  } else if (budget > 0 && t.final_volume > budget) {
    return fail(at_start("trace: volume exceeds the budget without truncating", slot, t.start));
  }
  return {};
}

// Feeds the recorded probe sequence to the historical map-based execution and
// demands identical revelations — the third leg of the differential (flat and
// traced executions are compared via SweepResults; this pins both against the
// reference semantics).
CheckResult check_against_reference(GraphView g, const IdAssignment& ids,
                                    const obs::ExecutionTrace& t, std::int64_t budget,
                                    std::size_t slot) {
  ReferenceMapExecution ref(g, ids, t.start, budget);
  for (std::size_t e = 0; e < t.events.size(); ++e) {
    const obs::TraceEvent& ev = t.events[e];
    if (!ref.visited(ev.queried)) {
      return fail(at_start("reference: probe from a node the reference has not visited", slot,
                           t.start));
    }
    NodeIndex u = kNoNode;
    try {
      u = ref.query(ev.queried, ev.port);
    } catch (const QueryBudgetExceeded&) {
      return fail(at_start("reference: truncated before the flat engine did", slot, t.start));
    }
    if (u != ev.found || ref.id(u) != ev.found_id || ref.degree(u) != ev.found_degree) {
      return fail(at_start("reference: probe revealed a different node", slot, t.start));
    }
    if (ref.volume() != ev.volume) {
      return fail(at_start("reference: running volume diverged from the flat engine", slot,
                           t.start));
    }
  }
  if (t.truncated) {
    bool threw = false;
    try {
      (void)ref.query(t.truncated_at_node, t.truncated_at_port);
    } catch (const QueryBudgetExceeded&) {
      threw = true;
    }
    if (!threw) {
      return fail(at_start("reference: recorded truncating probe did not truncate", slot,
                           t.start));
    }
  }
  if (ref.volume() != t.final_volume || ref.distance() != t.final_distance ||
      ref.query_count() != t.query_count) {
    return fail(at_start("reference: final costs diverged from the flat engine", slot,
                         t.start));
  }
  return {};
}

// The case's start set: whole graph when start_count == 0, else the sampled
// subset (validated separately by check_case's sampler checks).
std::vector<NodeIndex> case_starts(const FuzzCase& c, NodeIndex n) {
  if (c.start_count == 0) {
    std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
    for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
    return starts;
  }
  return bench::sampled_starts(n, c.start_count);
}

}  // namespace

const char* model_name(RandomnessModel m) {
  switch (m) {
    case RandomnessModel::Public: return "public";
    case RandomnessModel::Secret: return "secret";
    default: return "private";
  }
}

bool model_from_name(const std::string& name, RandomnessModel* out) {
  if (name == "private") *out = RandomnessModel::Private;
  else if (name == "public") *out = RandomnessModel::Public;
  else if (name == "secret") *out = RandomnessModel::Secret;
  else return false;
  return true;
}

std::string describe(const FuzzCase& c) {
  std::ostringstream os;
  os << "family=" << c.family << " variant=" << c.variant << " n_target=" << c.n_target
     << " instance_seed=" << c.instance_seed << " model=" << model_name(c.model)
     << " budget=" << c.budget << " start_count=" << c.start_count
     << " tape_seed=" << c.tape_seed << " mutation_seed=" << c.mutation_seed
     << " mutation_rewires=" << c.mutation_rewires
     << " mutation_labels=" << c.mutation_labels;
  return os.str();
}

CheckResult check_case(const FuzzCase& c) {
  const RegistryEntry* entry = ProblemRegistry::global().find(c.family);
  if (entry == nullptr) return fail("unknown registry family: " + c.family);
  if (c.variant < 0 || c.variant >= entry->variants) {
    return fail("variant " + std::to_string(c.variant) + " out of range for " + c.family);
  }

  const ErasedInstance inst = entry->make_variant(c.n_target, c.instance_seed, c.variant);
  const NodeIndex n = inst.node_count();
  if (n <= 0) return fail("generator produced an empty instance");

  // Exercise the sampler's edge counts on every case (count == 1 is the one
  // the pre-fix implementation silently rounded up to 2), then build the
  // case's own start set.
  for (const NodeIndex count : {NodeIndex{1}, NodeIndex{2}, n, 2 * n}) {
    if (CheckResult r = check_sampled_starts(n, count, bench::sampled_starts(n, count)); !r) {
      return r;
    }
  }
  std::vector<NodeIndex> starts = case_starts(c, n);
  if (c.start_count != 0) {
    if (CheckResult r = check_sampled_starts(n, c.start_count, starts); !r) return r;
  }

  if (CheckResult r = check_tape(inst.ids(), c, n); !r) return r;

  RandomTape tape(inst.ids(), c.tape_seed, c.model);
  const std::span<const NodeIndex> span(starts);
  auto solve = [&](auto& exec) { return inst.solve(exec); };

  auto serial = ParallelRunner(1).run_at(inst.graph(), inst.ids(), span, solve, c.budget,
                                         &tape);
  auto threaded = ParallelRunner(8).run_at(inst.graph(), inst.ids(), span, solve, c.budget,
                                           &tape);
  if (serial.output != threaded.output) return fail("sweep: 8-thread outputs diverge");
  if (serial.volume != threaded.volume || serial.distance != threaded.distance ||
      serial.queries != threaded.queries) {
    return fail("sweep: 8-thread per-start costs diverge");
  }
  if (!same_costs(serial.stats, threaded.stats)) {
    return fail("sweep: 8-thread aggregate costs diverge");
  }

  obs::TraceRecorder recorder;
  auto traced = obs::run_at_traced(ParallelRunner(1), inst.graph(), inst.ids(), span, solve,
                                   recorder, c.budget, &tape);
  if (serial.output != traced.output) return fail("traced: outputs diverge from flat");
  if (serial.volume != traced.volume || serial.distance != traced.distance ||
      serial.queries != traced.queries || !same_costs(serial.stats, traced.stats)) {
    return fail("traced: costs diverge from flat");
  }

  std::int64_t truncated_traces = 0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::int64_t vol = serial.volume[i];
    const std::int64_t dist = serial.distance[i];
    const std::int64_t q = serial.queries[i];
    if (vol < 1) return fail(at_start("invariant: volume < 1", i, starts[i]));
    if (dist + 1 > vol) {
      return fail(at_start("invariant: distance + 1 > volume", i, starts[i]));
    }
    if (vol > q + 1) {
      return fail(at_start("invariant: volume > queries + 1", i, starts[i]));
    }
    const obs::ExecutionTrace& t = recorder.traces()[i];
    if (t.start != starts[i]) return fail(at_start("trace: wrong start slot", i, starts[i]));
    if (t.final_volume != vol || t.final_distance != dist || t.query_count != q) {
      return fail(at_start("trace: recorded finals differ from SweepResult", i, starts[i]));
    }
    if (CheckResult r = check_trace_invariants(t, c.budget, i); !r) return r;
    if (t.truncated) ++truncated_traces;
    if (CheckResult r = check_against_reference(inst.graph(), inst.ids(), t, c.budget, i); !r) {
      return r;
    }
  }
  if (truncated_traces != serial.stats.truncated) {
    return fail("trace: truncation count differs from SweepStats.truncated");
  }

  if (const auto replay = obs::replay_sweep(inst.graph(), inst.ids(), recorder.traces(),
                                            c.budget);
      !replay.ok) {
    return fail("replay: " + replay.error);
  }

  // With no budget and a whole-graph start set the joint output must satisfy
  // the family's own LCL verifier (Def. 2.6).
  if (c.budget == 0 && c.start_count == 0) {
    const VerifyResult verdict = inst.verify(serial.output);
    if (!verdict.ok) {
      return fail("verify: " + std::to_string(verdict.violations) +
                  " violations, first at node " + std::to_string(verdict.first_bad));
    }
  }

  if (CheckResult r = check_summarize(serial.volume); !r) return r;
  if (CheckResult r = check_summarize(serial.distance); !r) return r;

  return {};
}

CheckResult check_cache_case(const FuzzCase& c) {
  const RegistryEntry* entry = ProblemRegistry::global().find(c.family);
  if (entry == nullptr) return fail("unknown registry family: " + c.family);
  if (c.variant < 0 || c.variant >= entry->variants) {
    return fail("variant " + std::to_string(c.variant) + " out of range for " + c.family);
  }
  const ErasedInstance inst = entry->make_variant(c.n_target, c.instance_seed, c.variant);
  const NodeIndex n = inst.node_count();
  if (n <= 0) return fail("generator produced an empty instance");
  const std::vector<NodeIndex> starts = case_starts(c, n);
  const std::span<const NodeIndex> span(starts);

  RandomTape tape(inst.ids(), c.tape_seed, c.model);
  auto solve = [&](auto& exec) { return inst.solve(exec); };
  auto config = [](CachePolicy p) {
    CacheConfig cfg;
    cfg.policy = p;
    return cfg;
  };
  const auto baseline = ParallelRunner(1, config(CachePolicy::Off))
                            .run_at(inst.graph(), inst.ids(), span, solve, c.budget, &tape);
  for (const CachePolicy policy : {CachePolicy::PerStart, CachePolicy::Shared}) {
    for (const int threads : {1, 8}) {
      const auto run = ParallelRunner(threads, config(policy))
                           .run_at(inst.graph(), inst.ids(), span, solve, c.budget, &tape);
      const std::string where = std::string(cache_policy_name(policy)) + " at " +
                                std::to_string(threads) + " thread(s)";
      if (baseline.output != run.output) return fail("cache: outputs diverge under " + where);
      if (baseline.volume != run.volume || baseline.distance != run.distance ||
          baseline.queries != run.queries) {
        return fail("cache: per-start costs diverge under " + where);
      }
      if (!same_costs(baseline.stats, run.stats)) {
        return fail("cache: aggregate costs diverge under " + where);
      }
      if (run.stats.cache.policy != policy) {
        return fail("cache: sweep stats tagged with the wrong policy under " + where);
      }
    }
  }

  // Recording executions must take the direct path: identical results with
  // every cache counter untouched.
  obs::TraceRecorder recorder;
  const auto traced =
      obs::run_at_traced(ParallelRunner(2, config(CachePolicy::Shared)), inst.graph(),
                         inst.ids(), span, solve, recorder, c.budget, &tape);
  if (baseline.output != traced.output || baseline.volume != traced.volume ||
      baseline.distance != traced.distance || baseline.queries != traced.queries ||
      !same_costs(baseline.stats, traced.stats)) {
    return fail("cache: traced sweep diverges from the uncached flat sweep");
  }
  if (traced.stats.cache.hits != 0 || traced.stats.cache.misses != 0 ||
      traced.stats.cache.served_nodes != 0) {
    return fail("cache: traced sweep touched the view cache (recording must bypass it)");
  }
  return {};
}

CheckResult check_backend_case(const FuzzCase& c) {
  const RegistryEntry* entry = ProblemRegistry::global().find(c.family);
  if (entry == nullptr) return fail("unknown registry family: " + c.family);
  if (c.variant < 0 || c.variant >= entry->variants) {
    return fail("variant " + std::to_string(c.variant) + " out of range for " + c.family);
  }
  const ErasedInstance inst = entry->make_variant(c.n_target, c.instance_seed, c.variant);
  const NodeIndex n = inst.node_count();
  if (n <= 0) return fail("generator produced an empty instance");
  const std::vector<NodeIndex> starts = case_starts(c, n);
  const std::span<const NodeIndex> span(starts);
  const ProbePlan plan = entry->plan;

  auto solve = [&](auto& exec) { return inst.solve(exec); };
  auto config = [](CachePolicy p) {
    CacheConfig cfg;
    cfg.policy = p;
    return cfg;
  };

  // Reference row: Basic backend, cache off, serial, no budget / no tape (the
  // configuration in which a batchable plan is batched-eligible).
  ParallelRunner base_runner(1, config(CachePolicy::Off));
  base_runner.set_backend(ExecBackend::Basic);
  const auto baseline = base_runner.run_planned(inst.graph(), inst.ids(), span, plan, solve);
  if (baseline.stats.backend != ExecBackend::Basic) {
    return fail("backend: basic sweep mis-tagged as batched");
  }
  if (baseline.stats.plan != plan.kind) {
    return fail("backend: basic sweep lost its plan tag");
  }

  for (const CachePolicy policy :
       {CachePolicy::Off, CachePolicy::PerStart, CachePolicy::Shared}) {
    for (const int threads : {1, 8}) {
      ParallelRunner runner(threads, config(policy));
      runner.set_backend(ExecBackend::Batched);
      const auto run = runner.run_planned(inst.graph(), inst.ids(), span, plan, solve);
      const std::string where = std::string(plan.name()) + " under " +
                                cache_policy_name(policy) + " at " +
                                std::to_string(threads) + " thread(s)";
      if (baseline.output != run.output) {
        return fail("backend: outputs diverge for " + where);
      }
      if (baseline.volume != run.volume || baseline.distance != run.distance ||
          baseline.queries != run.queries) {
        return fail("backend: per-start costs diverge for " + where);
      }
      if (!same_costs(baseline.stats, run.stats)) {
        return fail("backend: aggregate costs diverge for " + where);
      }
      if (run.stats.plan != plan.kind) {
        return fail("backend: sweep tagged with the wrong plan for " + where);
      }
      if (plan.batchable()) {
        if (run.stats.backend != ExecBackend::Batched) {
          return fail("backend: batchable sweep did not take the batched path for " + where);
        }
        // Every start is either executed in a batch or served from the shared
        // cache — exactly once.  (Starts are strictly increasing, so within a
        // sweep-scoped cache the hit count can only come from re-serving.)
        if (run.stats.batch.batched_starts + run.stats.cache.hits !=
            static_cast<std::int64_t>(starts.size())) {
          return fail("backend: batch start accounting wrong for " + where);
        }
        if (!starts.empty() && run.stats.batch.batches < 1) {
          return fail("backend: batched sweep recorded zero batches for " + where);
        }
      } else if (run.stats.backend != ExecBackend::Basic) {
        return fail("backend: non-batchable plan tagged batched for " + where);
      }
    }
  }

  // A budget or an attached tape makes the sweep batched-ineligible: the
  // runner must fall back to the per-start basic path and stay bit-identical
  // to a Basic-backend runner under the same configuration.
  RandomTape base_tape(inst.ids(), c.tape_seed, c.model);
  ParallelRunner fb_base(1, config(CachePolicy::Off));
  fb_base.set_backend(ExecBackend::Basic);
  const auto fb_baseline = fb_base.run_planned(inst.graph(), inst.ids(), span, plan, solve,
                                               c.budget, &base_tape);
  RandomTape tape(inst.ids(), c.tape_seed, c.model);
  ParallelRunner fb_runner(8, config(CachePolicy::Off));
  fb_runner.set_backend(ExecBackend::Batched);
  const auto fallback = fb_runner.run_planned(inst.graph(), inst.ids(), span, plan, solve,
                                              c.budget, &tape);
  if (fallback.stats.backend != ExecBackend::Basic) {
    return fail("backend: taped sweep did not fall back to the basic path");
  }
  if (fb_baseline.output != fallback.output || fb_baseline.volume != fallback.volume ||
      fb_baseline.distance != fallback.distance ||
      fb_baseline.queries != fallback.queries ||
      !same_costs(fb_baseline.stats, fallback.stats)) {
    return fail("backend: taped fallback diverges from the basic backend");
  }
  return {};
}

CheckResult check_snapshot_case(const FuzzCase& c) {
  const RegistryEntry* entry = ProblemRegistry::global().find(c.family);
  if (entry == nullptr) return fail("unknown registry family: " + c.family);
  if (c.variant < 0 || c.variant >= entry->variants) {
    return fail("variant " + std::to_string(c.variant) + " out of range for " + c.family);
  }
  const ErasedInstance inst = entry->make_variant(c.n_target, c.instance_seed, c.variant);
  const NodeIndex n = inst.node_count();
  if (n <= 0) return fail("generator produced an empty instance");

  // Round-trip through a uniquely named temp file; the mapping survives the
  // unlink (POSIX), so the file is removed as soon as the load returns.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("volcal-fuzz-" + c.family + "-v" + std::to_string(c.variant) + "-n" +
        std::to_string(c.n_target) + "-s" + std::to_string(c.instance_seed) + "-p" +
        std::to_string(static_cast<long long>(::getpid())) + ".vsnap"))
          .string();
  ErasedInstance loaded = [&] {
    inst.save_snapshot(path);
    ErasedInstance l = io::load_instance(path);
    std::remove(path.c_str());
    return l;
  }();

  if (loaded.family() != inst.family()) {
    return fail("snapshot: family round-tripped as '" + loaded.family() + "'");
  }
  if (loaded.node_count() != n) {
    return fail("snapshot: node count round-tripped as " +
                std::to_string(loaded.node_count()));
  }
  const GraphView a = inst.graph();
  const GraphView b = loaded.graph();
  if (a.max_degree() != b.max_degree() || a.edge_count() != b.edge_count()) {
    return fail("snapshot: graph shape (max degree / edge count) diverged");
  }
  if (std::memcmp(a.offsets_data(), b.offsets_data(),
                  sizeof(std::size_t) * static_cast<std::size_t>(n + 1)) != 0) {
    return fail("snapshot: CSR offsets are not bit-identical");
  }
  if (a.edge_count() > 0 &&
      std::memcmp(a.adjacency_data(), b.adjacency_data(),
                  sizeof(NodeIndex) * static_cast<std::size_t>(2 * a.edge_count())) != 0) {
    return fail("snapshot: CSR adjacency is not bit-identical");
  }
  for (NodeIndex v = 0; v < n; ++v) {
    if (inst.ids().id_of(v) != loaded.ids().id_of(v)) {
      return fail("snapshot: ID table diverged at node " + std::to_string(v));
    }
  }

  // Differential sweeps: the loaded instance must be bit-identical to the
  // in-RAM one in outputs and costs, serial and 8-thread, and on the
  // family's planned backend.
  const std::vector<NodeIndex> starts = case_starts(c, n);
  const std::span<const NodeIndex> span(starts);
  auto solve_a = [&](auto& exec) { return inst.solve(exec); };
  auto solve_b = [&](auto& exec) { return loaded.solve(exec); };
  const auto base = ParallelRunner(1).run_at(a, inst.ids(), span, solve_a, c.budget);
  for (const int threads : {1, 8}) {
    const auto run =
        ParallelRunner(threads).run_at(b, loaded.ids(), span, solve_b, c.budget);
    const std::string where = "at " + std::to_string(threads) + " thread(s)";
    if (base.output != run.output) {
      return fail("snapshot: outputs diverge from the in-RAM instance " + where);
    }
    if (base.volume != run.volume || base.distance != run.distance ||
        base.queries != run.queries) {
      return fail("snapshot: per-start costs diverge from the in-RAM instance " + where);
    }
    if (!same_costs(base.stats, run.stats)) {
      return fail("snapshot: aggregate costs diverge from the in-RAM instance " + where);
    }
  }
  {
    ParallelRunner runner(8);
    runner.set_backend(ExecBackend::Batched);
    const auto planned =
        runner.run_planned(b, loaded.ids(), span, entry->plan, solve_b, c.budget);
    if (base.output != planned.output || base.volume != planned.volume ||
        base.distance != planned.distance || base.queries != planned.queries ||
        !same_costs(base.stats, planned.stats)) {
      return fail("snapshot: planned-backend sweep on the loaded instance diverges");
    }
  }

  // Self-verification through the loaded instance's own wiring.
  if (c.budget == 0) {
    const auto whole = run_at_all_nodes(b, loaded.ids(), solve_b);
    const VerifyResult verdict = loaded.verify(whole.output);
    if (!verdict.ok) {
      return fail("snapshot: loaded instance fails its verifier (" +
                  std::to_string(verdict.violations) + " violations, first at node " +
                  std::to_string(verdict.first_bad) + ")");
    }
  }
  return {};
}

CheckResult check_mutation_case(const FuzzCase& c) {
  const RegistryEntry* entry = ProblemRegistry::global().find(c.family);
  if (entry == nullptr) return fail("unknown registry family: " + c.family);
  if (c.variant < 0 || c.variant >= entry->variants) {
    return fail("variant " + std::to_string(c.variant) + " out of range for " + c.family);
  }
  if (c.mutation_rewires < 0 || c.mutation_labels < 0) {
    return fail("mutation: negative batch size in case");
  }
  const ErasedInstance inst = entry->make_variant(c.n_target, c.instance_seed, c.variant);
  const NodeIndex n = inst.node_count();
  if (n <= 0) return fail("generator produced an empty instance");
  const GraphView g0 = inst.graph();

  // Pre-mutation CSR copies — the copy-on-write contract says the old
  // instance's storage is untouched by everything below.
  const std::vector<std::size_t> offsets_before(
      g0.offsets_data(), g0.offsets_data() + static_cast<std::size_t>(n + 1));
  const std::vector<NodeIndex> adjacency_before(
      g0.adjacency_data(),
      g0.adjacency_data() + static_cast<std::size_t>(2 * g0.edge_count()));

  const MutationBatch batch =
      inst.propose_mutation(c.mutation_seed, c.mutation_rewires, c.mutation_labels);
  std::vector<NodeIndex> touched;
  const ErasedInstance mut = [&] {
    std::vector<NodeIndex> t;
    ErasedInstance m = inst.mutated(batch, &t);
    touched = std::move(t);
    return m;
  }();
  const ErasedInstance naive = inst.mutated_naive(batch);

  // --- representation differential: fast CSR path vs Builder rebuild -------
  const GraphView gm = mut.graph();
  const GraphView gn = naive.graph();
  if (mut.node_count() != n || naive.node_count() != n) {
    return fail("mutation: node count changed by a leaf rewire");
  }
  if (gm.max_degree() != gn.max_degree() || gm.edge_count() != gn.edge_count()) {
    return fail("mutation: fast and naive paths disagree on graph shape");
  }
  if (std::memcmp(gm.offsets_data(), gn.offsets_data(),
                  sizeof(std::size_t) * static_cast<std::size_t>(n + 1)) != 0) {
    return fail("mutation: fast and naive CSR offsets are not bit-identical");
  }
  if (gm.edge_count() > 0 &&
      std::memcmp(gm.adjacency_data(), gn.adjacency_data(),
                  sizeof(NodeIndex) * static_cast<std::size_t>(2 * gm.edge_count())) != 0) {
    return fail("mutation: fast and naive CSR adjacency is not bit-identical");
  }

  // --- identity and touched-set contracts ----------------------------------
  if (gm.storage_identity() == kAnonymousStorage ||
      gn.storage_identity() == kAnonymousStorage ||
      gm.storage_identity() == g0.storage_identity() ||
      gn.storage_identity() == g0.storage_identity() ||
      gm.storage_identity() == gn.storage_identity()) {
    return fail("mutation: mutated instances must own fresh storage tokens");
  }
  for (std::size_t i = 0; i < touched.size(); ++i) {
    if (touched[i] < 0 || touched[i] >= n) return fail("mutation: touched node out of range");
    if (i > 0 && touched[i] <= touched[i - 1]) {
      return fail("mutation: touched set not sorted/deduplicated");
    }
  }
  if (batch.rewires.empty() && !touched.empty()) {
    return fail("mutation: label-only batch reported structural endpoints");
  }
  for (const LeafRewire& r : batch.rewires) {
    if (!std::binary_search(touched.begin(), touched.end(), r.leaf) ||
        !std::binary_search(touched.begin(), touched.end(), r.new_parent)) {
      return fail("mutation: rewire endpoint missing from the touched set");
    }
  }
  for (NodeIndex v = 0; v < n; ++v) {
    if (mut.ids().id_of(v) != inst.ids().id_of(v)) {
      return fail("mutation: ID table changed at node " + std::to_string(v));
    }
  }

  // --- sweep differential: mutated vs naive-rebuilt, both backends, every
  // cache policy, 1 and 8 threads --------------------------------------------
  const std::vector<NodeIndex> starts = case_starts(c, n);
  const std::span<const NodeIndex> span(starts);
  auto solve_mut = [&](auto& exec) { return mut.solve(exec); };
  auto solve_naive = [&](auto& exec) { return naive.solve(exec); };
  auto config = [](CachePolicy p) {
    CacheConfig cfg;
    cfg.policy = p;
    return cfg;
  };
  const auto base_mut = ParallelRunner(1, config(CachePolicy::Off))
                            .run_at(gm, mut.ids(), span, solve_mut, c.budget);
  const auto base_naive = ParallelRunner(1, config(CachePolicy::Off))
                              .run_at(gn, naive.ids(), span, solve_naive, c.budget);
  if (base_mut.output != base_naive.output) {
    return fail("mutation: mutate-then-query diverges from rebuild-then-query");
  }
  if (base_mut.volume != base_naive.volume || base_mut.distance != base_naive.distance ||
      base_mut.queries != base_naive.queries ||
      !same_costs(base_mut.stats, base_naive.stats)) {
    return fail("mutation: mutate-then-query costs diverge from rebuild-then-query");
  }
  for (const CachePolicy policy :
       {CachePolicy::Off, CachePolicy::PerStart, CachePolicy::Shared}) {
    for (const int threads : {1, 8}) {
      ParallelRunner runner(threads, config(policy));
      runner.set_backend(ExecBackend::Batched);
      const auto run =
          runner.run_planned(gm, mut.ids(), span, entry->plan, solve_mut, c.budget);
      const std::string where = std::string(cache_policy_name(policy)) + " at " +
                                std::to_string(threads) + " thread(s)";
      if (base_mut.output != run.output) {
        return fail("mutation: planned-backend outputs diverge under " + where);
      }
      if (base_mut.volume != run.volume || base_mut.distance != run.distance ||
          base_mut.queries != run.queries || !same_costs(base_mut.stats, run.stats)) {
        return fail("mutation: planned-backend costs diverge under " + where);
      }
    }
  }

  // --- warm cache + region invalidation: retained entries must serve the
  // new graph bit-identically to cold recomputation -------------------------
  const std::int64_t radius = entry->plan.batchable() ? entry->plan.radius : 64;
  ViewCache cache(config(CachePolicy::Shared));
  cache.bind(g0);
  ExecutionScratch scratch;
  if (entry->plan.batchable()) {
    BatchedBallExecutor warm;
    warm.bind(g0);
    NodeIndex centers[BatchedBallExecutor::kMaxBatch];
    for (NodeIndex at = 0; at < n;) {
      int b = 0;
      for (; b < BatchedBallExecutor::kMaxBatch && at < n; ++b, ++at) centers[b] = at;
      warm.run({centers, static_cast<std::size_t>(b)}, radius);
      for (int s = 0; s < b; ++s) {
        cache.store(centers[s], warm.take_ball(s), cache.epoch(), g0.storage_identity());
      }
    }
  } else {
    for (NodeIndex v = 0; v < n; ++v) {
      Execution e(g0, inst.ids(), v, 0, scratch);
      e.attach_view_cache(&cache);
      (void)inst.solve(e);
    }
  }
  const std::size_t warm_entries = cache.entry_count();
  const auto inv =
      cache.invalidate_region(g0, touched, radius, gm.storage_identity());
  if (inv.fell_back_to_flush) {
    return fail("mutation: invalidate_region fell back to the full flush");
  }
  if (inv.evicted + inv.retained != warm_entries) {
    return fail("mutation: invalidate_region accounting does not cover the warm set");
  }
  if (touched.empty() && inv.evicted != 0) {
    return fail("mutation: label-only batch evicted cached balls");
  }
  if (entry->plan.batchable()) {
    BatchedBallExecutor cold;
    cold.bind(gm);
    std::size_t hits = 0;
    NodeIndex center[1];
    for (NodeIndex v = 0; v < n; ++v) {
      center[0] = v;
      cold.run({center, 1}, radius);
      BallCosts costs;
      if (!cache.serve_costs(gm, v, radius, &costs)) continue;
      ++hits;
      if (costs.volume != cold.volume(0) || costs.distance != cold.distance(0) ||
          costs.queries != cold.queries(0)) {
        return fail(
            "mutation: a ball retained across invalidate_region serves stale costs "
            "at node " +
            std::to_string(v));
      }
    }
    if (hits != inv.retained) {
      return fail("mutation: " + std::to_string(inv.retained) +
                  " retained full-depth balls but " + std::to_string(hits) +
                  " post-mutation cache hits");
    }
  } else {
    for (NodeIndex v = 0; v < n; ++v) {
      Execution cold(gm, mut.ids(), v, 0, scratch);
      const int cold_label = mut.solve(cold);
      Execution warm_exec(gm, mut.ids(), v, 0, scratch);
      warm_exec.attach_view_cache(&cache);
      const int warm_label = mut.solve(warm_exec);
      if (cold_label != warm_label || cold.volume() != warm_exec.volume() ||
          cold.distance() != warm_exec.distance() ||
          cold.query_count() != warm_exec.query_count()) {
        return fail(
            "mutation: region-invalidated cache diverges from cold execution at node " +
            std::to_string(v));
      }
    }
  }

  // --- copy-on-write: the pre-mutation instance is byte-identical ----------
  if (std::memcmp(g0.offsets_data(), offsets_before.data(),
                  sizeof(std::size_t) * offsets_before.size()) != 0 ||
      (!adjacency_before.empty() &&
       std::memcmp(g0.adjacency_data(), adjacency_before.data(),
                   sizeof(NodeIndex) * adjacency_before.size()) != 0)) {
    return fail("mutation: the pre-mutation instance's CSR storage was modified");
  }
  return {};
}

}  // namespace volcal::check
