#include "check/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "check/repro.hpp"
#include "lcl/registry.hpp"
#include "util/hash.hpp"

namespace volcal::check {
namespace {

// Field-specific domain tags: each FuzzCase field draws from its own hash
// stream of (seed, iter), so tweaking one field's distribution never shifts
// another's.
enum Field : std::uint64_t {
  kVariant = 1,
  kNTarget,
  kInstanceSeed,
  kModel,
  kBudgetCoin,
  kBudget,
  kStartCoin,
  kStartCount,
  kTapeSeed,
  kMutationSeed,
  kMutationRewires,
  kMutationLabels,
};

std::uint64_t draw(std::uint64_t seed, std::uint64_t iter, Field field) {
  return mix64(seed, 0x66757a7aull /* "fuzz" */, iter, static_cast<std::uint64_t>(field));
}

std::string slug(const std::string& error) {
  std::string s;
  for (const char ch : error) {
    if (s.size() >= 40) break;
    if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9')) {
      s += ch;
    } else if (ch >= 'A' && ch <= 'Z') {
      s += static_cast<char>(ch - 'A' + 'a');
    } else if (!s.empty() && s.back() != '-') {
      s += '-';
    }
  }
  while (!s.empty() && s.back() == '-') s.pop_back();
  return s.empty() ? "failure" : s;
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, std::uint64_t iter, const std::string& family,
                      int family_variants, NodeIndex max_n) {
  FuzzCase c;
  c.family = family;
  c.variant = static_cast<int>(draw(seed, iter, kVariant) %
                               static_cast<std::uint64_t>(std::max(family_variants, 1)));
  const NodeIndex floor = 32;
  const NodeIndex ceil = std::max<NodeIndex>(max_n, floor + 1);
  c.n_target = floor + static_cast<NodeIndex>(draw(seed, iter, kNTarget) %
                                              static_cast<std::uint64_t>(ceil - floor));
  c.instance_seed = draw(seed, iter, kInstanceSeed);
  c.model = static_cast<RandomnessModel>(draw(seed, iter, kModel) % 3);
  // Budgets: unlimited half the time; otherwise small (1..64) so truncation
  // fires on essentially every start of every family.
  c.budget = (draw(seed, iter, kBudgetCoin) & 1) == 0
                 ? 0
                 : 1 + static_cast<std::int64_t>(draw(seed, iter, kBudget) % 64);
  // Starts: whole-graph sweeps half the time (they alone feed the verifier
  // check), sampled subsets otherwise — including the count == 1 edge.
  c.start_count = (draw(seed, iter, kStartCoin) & 1) == 0
                      ? 0
                      : 1 + static_cast<NodeIndex>(draw(seed, iter, kStartCount) % 32);
  c.tape_seed = draw(seed, iter, kTapeSeed);
  // Mutation batches stay small — the differential is about correctness of
  // the delta path, not bulk churn — but cover the label-only (rewires may
  // still be dropped to 0 by shrinking) and structural shapes.
  c.mutation_seed = draw(seed, iter, kMutationSeed);
  c.mutation_rewires = 1 + static_cast<int>(draw(seed, iter, kMutationRewires) % 3);
  c.mutation_labels = static_cast<int>(draw(seed, iter, kMutationLabels) % 4);
  return c;
}

FuzzCase shrink_case(FuzzCase c,
                     const std::function<CheckResult(const FuzzCase&)>& failing_predicate) {
  auto still_fails = [&](const FuzzCase& candidate) {
    return !failing_predicate(candidate).ok;
  };
  // Greedy descent: try each reduction, keep it only if the failure
  // persists; repeat until a full pass changes nothing.  Every reduction
  // strictly shrinks a bounded non-negative measure, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    while (c.n_target > 32) {  // halve the instance, floor 32
      FuzzCase candidate = c;
      candidate.n_target = std::max<NodeIndex>(32, c.n_target / 2);
      if (candidate.n_target == c.n_target || !still_fails(candidate)) break;
      c = candidate;
      changed = true;
    }
    if (c.start_count == 0 || c.start_count > 1) {
      // Prefer the one-start sweep; fall back to shaving the sample.
      FuzzCase candidate = c;
      candidate.start_count = 1;
      if (still_fails(candidate)) {
        c = candidate;
        changed = true;
      } else if (c.start_count > 1) {
        candidate.start_count = c.start_count - 1;
        if (still_fails(candidate)) {
          c = candidate;
          changed = true;
        }
      }
    }
    if (c.variant != 0) {
      FuzzCase candidate = c;
      candidate.variant = 0;
      if (still_fails(candidate)) {
        c = candidate;
        changed = true;
      }
    }
    if (c.model != RandomnessModel::Private) {
      FuzzCase candidate = c;
      candidate.model = RandomnessModel::Private;
      if (still_fails(candidate)) {
        c = candidate;
        changed = true;
      }
    }
    if (c.budget != 0) {
      FuzzCase candidate = c;
      candidate.budget = 0;
      if (still_fails(candidate)) {
        c = candidate;
        changed = true;
      }
    }
    if (c.mutation_labels > 0) {
      FuzzCase candidate = c;
      candidate.mutation_labels = 0;
      if (still_fails(candidate)) {
        c = candidate;
        changed = true;
      }
    }
    if (c.mutation_rewires > 1) {
      FuzzCase candidate = c;
      candidate.mutation_rewires = 1;
      if (still_fails(candidate)) {
        c = candidate;
        changed = true;
      }
    }
  }
  return c;
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport report;
  const auto families = ProblemRegistry::global().match(opts.family_filter);
  if (families.empty()) {
    FuzzFailure f;
    f.error = "no registry family matches filter '" + opts.family_filter + "'";
    report.failures.push_back(std::move(f));
    return report;
  }
  // With --cache / --backend / --snapshot / --mutate every case additionally
  // runs the cache-policy / execution-backend / snapshot round-trip /
  // dynamic-graph differential; shrinking uses the same combined predicate so
  // minimized cases still fail for the reported reason.
  const auto predicate = [&opts](const FuzzCase& candidate) -> CheckResult {
    CheckResult r = check_case(candidate);
    if (r.ok && opts.cache) r = check_cache_case(candidate);
    if (r.ok && opts.backend) r = check_backend_case(candidate);
    if (r.ok && opts.snapshot) r = check_snapshot_case(candidate);
    if (r.ok && opts.mutate) r = check_mutation_case(candidate);
    return r;
  };
  for (int iter = 0; iter < opts.iters; ++iter) {
    const RegistryEntry& entry =
        *families[static_cast<std::size_t>(iter) % families.size()];
    FuzzCase c = generate_case(opts.seed, static_cast<std::uint64_t>(iter), entry.name,
                               entry.variants, opts.max_n);
    if (opts.log_cases) {
      std::fprintf(stderr, "[fuzz %4d] %s\n", iter, describe(c).c_str());
    }
    const CheckResult result = predicate(c);
    ++report.iters_run;
    if (result.ok) continue;

    std::fprintf(stderr, "[fuzz %4d] FAIL: %s\n            %s\n", iter,
                 result.error.c_str(), describe(c).c_str());
    FuzzFailure failure;
    failure.original = c;
    failure.minimized = shrink_case(c, predicate);
    const CheckResult minimized = predicate(failure.minimized);
    // Shrinking preserves failure by construction; keep the sharper message.
    failure.error = minimized.ok ? result.error : minimized.error;
    std::fprintf(stderr, "            minimized: %s\n", describe(failure.minimized).c_str());
    if (!opts.out_dir.empty()) {
      const std::string path = opts.out_dir + "/" + slug(failure.error) + "-seed" +
                               std::to_string(opts.seed) + "-iter" + std::to_string(iter) +
                               ".repro";
      if (write_repro_file(path, failure.minimized, failure.error)) {
        failure.repro_path = path;
        std::fprintf(stderr, "            reproducer: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "            (could not write reproducer to %s)\n", path.c_str());
      }
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace volcal::check
