// Invariant checking for the query model — the predicate the differential
// fuzzer (check/fuzz.hpp) minimizes against.
//
// A FuzzCase names one randomized scenario: a registry family + shape
// variant + instance seed, a randomness model + tape seed, a query budget
// and a start-set size.  check_case() builds the instance and asserts, in
// one pass, everything the engine contract promises:
//
//   * differential execution — the flat epoch-stamped Execution, the traced
//     BasicExecution<RecordingSink> and the historical map-based
//     ReferenceMapExecution agree bit-for-bit on output, volume, distance,
//     query count and truncation point (the reference runs the recorded
//     probe sequence, so all three see identical query streams);
//   * engine determinism — a serial sweep and an 8-thread sweep of the same
//     start set produce identical SweepResults;
//   * model invariants — per start, distance + 1 <= volume <= queries + 1;
//     the traced running volume is monotone; truncation happens exactly at
//     the budget (volume == budget at the throw, never beyond it);
//   * trace faithfulness — every recorded trace survives obs::replay_trace;
//   * self-verification — with no budget, the family's upper-bound
//     algorithm's whole-graph output passes the family's own verifier;
//   * tape invariants — words are windows of the bit stream, accounting
//     matches consumption, ScopedUsage merging equals serial accounting, and
//     the three randomness models keep their access disciplines;
//   * helper contracts — bench::sampled_starts and stats::summarize agree
//     with independent recomputation on the case's own data.
//
// The checks are exactly the ones that catch the bugs this harness was built
// around (RandomTape word/bit stream aliasing, summarize median/p95 on even
// counts, sampled_starts count==1); deliberately re-introducing any of them
// makes check_case fail with a pinpointed error string.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "runtime/randomness.hpp"

namespace volcal::check {

// One reproducible scenario.  Everything check_case does is a pure function
// of these fields (plus the registry), which is what makes shrunk cases
// replayable from a text file.
struct FuzzCase {
  std::string family;                              // registry entry name
  int variant = 0;                                 // shape mutator index
  NodeIndex n_target = 300;                        // approximate instance size
  std::uint64_t instance_seed = 1;                 // generator seed
  RandomnessModel model = RandomnessModel::Private;
  std::int64_t budget = 0;                         // query budget, 0 = unlimited
  NodeIndex start_count = 0;                       // sampled starts, 0 = every node
  std::uint64_t tape_seed = 1;                     // RandomTape seed
  // Mutation-differential knobs (consumed by check_mutation_case only): the
  // seed and size of the MutationBatch propose_mutation draws for the case.
  std::uint64_t mutation_seed = 1;
  int mutation_rewires = 2;                        // leaf rewires requested
  int mutation_labels = 2;                         // label updates requested

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

struct CheckResult {
  bool ok = true;
  std::string error;  // first violated predicate, human-readable; empty when ok

  explicit operator bool() const { return ok; }
};

// Runs every check above on one case.  Throws nothing: malformed cases
// (unknown family, out-of-range variant) come back as failures.
CheckResult check_case(const FuzzCase& c);

// Cache-policy differential (runtime/view_cache.hpp): the same sweep under
// CachePolicy Off, PerStart and Shared, at 1 and 8 threads, must be
// bit-identical in outputs and per-start/aggregate costs, and a traced sweep
// on a cache-enabled runner must bypass the cache entirely (zero counters,
// identical results).  Run by the driver when --cache is set.
CheckResult check_cache_case(const FuzzCase& c);

// Backend differential (plan/probe_plan.hpp + runtime/batched_execution.hpp):
// the family's registered probe plan executed on the Batched backend, under
// every cache policy at 1 and 8 threads, must be bit-identical to the Basic
// backend in outputs and per-start/aggregate costs.  Also asserts the sweep
// stats are tagged with the right plan/backend, that every start is accounted
// for exactly once by the batch counters on batchable plans, and that a
// budgeted/taped sweep (batched-ineligible) falls back to the basic path
// bit-identically.  Run by the driver when --backend is set.
CheckResult check_backend_case(const FuzzCase& c);

// Snapshot round-trip differential (io/snapshot.hpp): the case's instance
// written as a binary snapshot, mmap-loaded back, must carry bit-identical
// CSR/ID arrays and produce bit-identical outputs and costs on the same
// sweep — basic serial, 8-thread, and the family's planned backend — and the
// loaded instance's whole-graph output must pass the family's verifier.
// Run by the driver when --snapshot is set.
CheckResult check_snapshot_case(const FuzzCase& c);

// Dynamic-graph differential (graph/mutation.hpp + ViewCache::
// invalidate_region): draws a deterministic MutationBatch for the case's
// instance and asserts mutate-then-query equals rebuild-from-scratch-then-
// query — the CSR fast path and the Builder-based naive path produce
// byte-identical graphs, the mutated instance sweeps bit-identically to the
// naive rebuild on the Basic and Batched backends under every cache policy
// at 1 and 8 threads, the pre-mutation instance is untouched (copy-on-
// write), and a Shared cache warmed on the old graph then region-invalidated
// serves post-mutation queries bit-identical to cold recomputation, with
// eviction/retention accounting exact.  Run by the driver when --mutate is
// set.
CheckResult check_mutation_case(const FuzzCase& c);

// Model <-> name, shared by the reproducer format and the driver's output.
const char* model_name(RandomnessModel m);
bool model_from_name(const std::string& name, RandomnessModel* out);

// One-line rendering for logs: "family=... variant=... n_target=..." etc.
std::string describe(const FuzzCase& c);

}  // namespace volcal::check
