// Reproducer files — the fuzzer's failure artifacts and the regression
// corpus' input format (tests/corpus/*.repro).
//
// Line-oriented text, one `key value` pair per line, so a failing CI run's
// artifact can be read, edited and committed by hand:
//
//   volcal-fuzz-repro v1
//   family leaf-coloring
//   variant 2
//   n_target 300
//   instance_seed 1234
//   model private
//   budget 40
//   start_count 8
//   tape_seed 77
//   error sweep: 8-thread outputs diverge
//
// `error` (the predicate the case violated when it was caught) and `#`
// comment lines are informational; parsing ignores unknown keys so the
// format can grow fields without invalidating an existing corpus.
#pragma once

#include <string>

#include "check/check.hpp"

namespace volcal::check {

// Renders a case (and the error that condemned it, if any) as a reproducer
// document.
std::string to_repro(const FuzzCase& c, const std::string& error = "");

// Parses a reproducer document.  On failure returns false and, when `why` is
// non-null, a one-line reason.  Unknown keys and `#` comments are skipped;
// the `error` line, if present, lands in `error_out` (may be null).
bool parse_repro(const std::string& text, FuzzCase* out, std::string* error_out = nullptr,
                 std::string* why = nullptr);

// File convenience wrappers (false on I/O or parse failure).
bool write_repro_file(const std::string& path, const FuzzCase& c,
                      const std::string& error = "");
bool load_repro_file(const std::string& path, FuzzCase* out,
                     std::string* error_out = nullptr, std::string* why = nullptr);

}  // namespace volcal::check
