#include "stats/growth.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace volcal::stats {

double log_star(double n) {
  double count = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++count;
  }
  return count;
}

std::string growth_name(GrowthClass g) {
  switch (g) {
    case GrowthClass::Constant: return "Θ(1)";
    case GrowthClass::LogStar: return "Θ(log* n)";
    case GrowthClass::Log: return "Θ(log n)";
    case GrowthClass::PolyRoot: return "Θ(n^α)";
    case GrowthClass::Linear: return "Θ(n)";
  }
  return "?";
}

LinearFit least_squares(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("least_squares: need >= 2 paired points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    // Constant x cannot explain varying y: R² is 1 only if y is constant too.
    fit.slope = 0;
    fit.intercept = sy / n;
    const double mean_y = sy / n;
    double ss_tot = 0;
    for (double y : ys) ss_tot += (y - mean_y) * (y - mean_y);
    fit.r_squared = ss_tot < 1e-12 ? 1.0 : 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double loglog_slope(const std::vector<double>& ns, const std::vector<double>& costs) {
  std::vector<double> lx, ly;
  lx.reserve(ns.size());
  ly.reserve(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    lx.push_back(std::log(ns[i]));
    ly.push_back(std::log(std::max(costs[i], 1e-9)));
  }
  return least_squares(lx, ly).slope;
}

GrowthFit classify_growth(const std::vector<double>& ns, const std::vector<double>& costs) {
  if (ns.size() != costs.size() || ns.size() < 3) {
    throw std::invalid_argument("classify_growth: need >= 3 paired points");
  }
  // Candidate feature transforms x(n); the model is cost ≈ a·x(n) + b.
  struct Candidate {
    GrowthClass cls;
    double (*transform)(double);
  };
  static const Candidate kCandidates[] = {
      {GrowthClass::LogStar, +[](double n) { return log_star(n); }},
      {GrowthClass::Log, +[](double n) { return std::log2(n); }},
      {GrowthClass::Linear, +[](double n) { return n; }},
  };
  GrowthFit best;
  best.r_squared = -1e18;
  // A flat curve defeats every fit: call it constant when the spread is tiny.
  {
    const double lo = *std::min_element(costs.begin(), costs.end());
    const double hi = *std::max_element(costs.begin(), costs.end());
    if (hi <= 1.3 * std::max(lo, 1e-9)) {
      best.cls = GrowthClass::Constant;
      best.r_squared = 1.0;
    }
  }
  for (const auto& cand : kCandidates) {
    // The flat-curve shortcut sets r_squared to exactly 1.0 today, but gate
    // on an epsilon so a future computed R² cannot dodge the break by
    // rounding (floating-point equality was the original bug here).
    if (best.cls == GrowthClass::Constant && best.r_squared >= 1.0 - 1e-9) break;
    std::vector<double> xs;
    xs.reserve(ns.size());
    for (double n : ns) xs.push_back(cand.transform(n));
    const LinearFit fit = least_squares(xs, costs);
    if (fit.r_squared > best.r_squared) {
      best.cls = cand.cls;
      best.r_squared = fit.r_squared;
    }
  }
  // Polynomial family via log-log slope; wins when the exponent is clearly
  // positive and the log-log fit explains the curve at least as well as the
  // raw-axis candidates (a small handicap keeps genuinely logarithmic curves,
  // whose log-log slope drifts to 0 as n grows, out of the poly family).
  {
    std::vector<double> lx, ly;
    for (std::size_t i = 0; i < ns.size(); ++i) {
      lx.push_back(std::log(ns[i]));
      ly.push_back(std::log(std::max(costs[i], 1e-9)));
    }
    const LinearFit ll = least_squares(lx, ly);
    // Take the poly family when it beats every raw-axis candidate outright,
    // or when it is close and no raw-axis candidate is convincing (genuinely
    // logarithmic curves fit their own transform near-perfectly, so they are
    // protected by the 0.985 gate).
    const bool poly_better = ll.r_squared > best.r_squared;
    const bool poly_close = ll.r_squared > best.r_squared - 0.05 && best.r_squared < 0.985;
    if (ll.slope > 0.15 && ll.r_squared > 0.9 && (poly_better || poly_close)) {
      best.cls = ll.slope > 0.9 ? GrowthClass::Linear : GrowthClass::PolyRoot;
      best.exponent = ll.slope;
      best.r_squared = ll.r_squared;
    } else {
      best.exponent = ll.slope;
    }
  }
  switch (best.cls) {
    case GrowthClass::PolyRoot: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "Θ(n^%.2f)", best.exponent);
      best.label = buf;
      break;
    }
    default:
      best.label = growth_name(best.cls);
  }
  return best;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double total = 0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  // Median: midpoint of the two central order statistics for even counts
  // (the upper-middle element alone biases high).  p95/p99: nearest-rank,
  // ceil(q·count), 1-based — the smallest value with >= q of the data at or
  // below it, so a single-element sample reports itself.
  const std::size_t mid = values.size() / 2;
  s.median = (values.size() % 2 == 1) ? values[mid] : 0.5 * (values[mid - 1] + values[mid]);
  const auto nearest_rank = [&](double q) {
    const auto rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(values.size())));
    return values[std::max<std::size_t>(rank, 1) - 1];
  };
  s.p95 = nearest_rank(0.95);
  s.p99 = nearest_rank(0.99);
  return s;
}

}  // namespace volcal::stats
