// Growth-class fitting: turns a measured cost curve {(n_i, cost_i)} into the
// Θ-class labels of Table 1.  We fit the candidate models the LCL literature
// distinguishes — Θ(1), Θ(log* n), Θ(log n), Θ(n^α) with 0 < α < 1, Θ(n) —
// by least squares on the appropriate transformed axes and pick the best R².
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace volcal::stats {

double log_star(double n);  // iterated log base 2

enum class GrowthClass {
  Constant,     // Θ(1)
  LogStar,      // Θ(log* n)
  Log,          // Θ(log n)
  PolyRoot,     // Θ(n^α), 0 < α < 1 (exponent reported)
  Linear,       // Θ(n)
};

std::string growth_name(GrowthClass g);

struct GrowthFit {
  GrowthClass cls = GrowthClass::Constant;
  double exponent = 0.0;   // α of the log-log fit (meaningful for PolyRoot/Linear)
  double r_squared = 0.0;  // of the winning model
  std::string label;       // human-readable, e.g. "Θ(log n)" or "Θ(n^0.34)"
};

// ns must be strictly increasing with >= 3 points; costs parallel, positive.
GrowthFit classify_growth(const std::vector<double>& ns, const std::vector<double>& costs);

// Least-squares slope/intercept/R² of y against x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit least_squares(const std::vector<double>& xs, const std::vector<double>& ys);

// Log-log slope: the empirical polynomial exponent of cost(n).
double loglog_slope(const std::vector<double>& ns, const std::vector<double>& costs);

struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, p95 = 0, p99 = 0;
  std::size_t count = 0;
};
Summary summarize(std::vector<double> values);

}  // namespace volcal::stats
