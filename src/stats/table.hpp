// Minimal fixed-width table renderer for the bench binaries' paper-style
// output (Table 1 rows, Figure 3 series).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace volcal::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&width](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], display_width(row[i]));
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    print_row(os, header_, width);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i) {
      rule += std::string(width[i] + 2, '-');
      if (i + 1 < width.size()) rule += "+";
    }
    os << rule << "\n";
    for (const auto& r : rows_) print_row(os, r, width);
  }

 private:
  // UTF-8 aware enough for our Θ/Õ/·: counts code points, not bytes.
  static std::size_t display_width(const std::string& s) {
    std::size_t w = 0;
    for (unsigned char c : s) {
      if ((c & 0xC0) != 0x80) ++w;
    }
    return w;
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << " " << cell << std::string(width[i] - display_width(cell) + 1, ' ');
      if (i + 1 < width.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace volcal::stats
