#include "labels/tree_labeling.hpp"

#include <deque>

namespace volcal {

bool is_internal(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  const NodeIndex lc = left_child_of(g, l, v);
  const NodeIndex rc = right_child_of(g, l, v);
  if (lc == kNoNode || parent_of(g, l, lc) != v) return false;  // Def 3.3(1)
  if (rc == kNoNode || parent_of(g, l, rc) != v) return false;  // Def 3.3(2)
  if (lc == rc) return false;                                   // Def 3.3(3)
  const NodeIndex p = parent_of(g, l, v);
  if (p != kNoNode && (p == lc || p == rc)) return false;       // Def 3.3(4)
  // Port-level collision P(v) = LC(v) or P(v) = RC(v) also violates (4) even
  // when the resolved nodes coincide by a dangling claim; ports are what the
  // definition compares.
  if (l.parent[v] != kNoPort && (l.parent[v] == l.left[v] || l.parent[v] == l.right[v])) {
    return false;
  }
  return true;
}

bool is_leaf(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  if (is_internal(g, l, v)) return false;
  const NodeIndex p = parent_of(g, l, v);
  return p != kNoNode && is_internal(g, l, p);
}

bool is_consistent(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  return is_internal(g, l, v) || is_leaf(g, l, v);
}

NodeKind classify(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  if (is_internal(g, l, v)) return NodeKind::Internal;
  if (is_leaf(g, l, v)) return NodeKind::Leaf;
  return NodeKind::Inconsistent;
}

PseudoForest build_pseudo_forest(const Graph& g, const TreeLabeling& l) {
  const NodeIndex n = l.node_count();
  PseudoForest f;
  f.lc.assign(n, kNoNode);
  f.rc.assign(n, kNoNode);
  f.up.assign(n, kNoNode);
  f.kind.resize(n);
  for (NodeIndex v = 0; v < n; ++v) f.kind[v] = classify(g, l, v);
  for (NodeIndex u = 0; u < n; ++u) {
    if (f.kind[u] != NodeKind::Internal) continue;
    // Edges of G_T run from an internal node u to each child v that is itself
    // in V_T (internal or leaf) and acknowledges u as parent (Obs. 3.7).
    for (NodeIndex child : {left_child_of(g, l, u), right_child_of(g, l, u)}) {
      if (child == kNoNode) continue;
      if (f.kind[child] == NodeKind::Inconsistent) continue;
      if (parent_of(g, l, child) != u) continue;
      if (child == left_child_of(g, l, u) && f.lc[u] == kNoNode) {
        f.lc[u] = child;
      } else {
        f.rc[u] = child;
      }
      f.up[child] = u;
    }
  }
  return f;
}

std::optional<NodeIndex> pseudo_forest_violation(const PseudoForest& f) {
  const NodeIndex n = f.node_count();
  std::vector<int> indeg(n, 0);
  for (NodeIndex v = 0; v < n; ++v) {
    if (!f.in_forest(v)) continue;
    const int out = (f.lc[v] != kNoNode ? 1 : 0) + (f.rc[v] != kNoNode ? 1 : 0);
    if (f.kind[v] == NodeKind::Internal && out != 2 && out != 0) {
      // An internal node whose children are inconsistent has out-degree 0 in
      // G_T restricted to V_T; mixed degree 1 breaks Obs. 3.7.
      return v;
    }
    if (f.kind[v] == NodeKind::Leaf && out != 0) return v;
    if (f.lc[v] != kNoNode) ++indeg[f.lc[v]];
    if (f.rc[v] != kNoNode) ++indeg[f.rc[v]];
  }
  for (NodeIndex v = 0; v < n; ++v) {
    if (f.in_forest(v) && indeg[v] > 1) return v;
  }
  return std::nullopt;
}

std::vector<char> on_cycle_mask(const PseudoForest& f) {
  // Peel nodes of (residual) out-degree 0 repeatedly; what survives lies on a
  // directed cycle.  Works because out-degree <= 2 and in-degree <= 1 make the
  // functional-graph argument on the reversed parent pointers unnecessary: a
  // node is on a cycle iff every suffix of some child-path returns to it, and
  // peeling sinks removes exactly the non-cycle nodes of a pseudo-forest.
  const NodeIndex n = f.node_count();
  std::vector<int> live_out(n, 0);
  std::vector<char> on_cycle(n, 0);
  std::deque<NodeIndex> queue;
  for (NodeIndex v = 0; v < n; ++v) {
    if (!f.in_forest(v)) continue;
    on_cycle[v] = 1;
    live_out[v] = (f.lc[v] != kNoNode ? 1 : 0) + (f.rc[v] != kNoNode ? 1 : 0);
    if (live_out[v] == 0) queue.push_back(v);
  }
  while (!queue.empty()) {
    NodeIndex v = queue.front();
    queue.pop_front();
    on_cycle[v] = 0;
    NodeIndex p = f.up[v];
    if (p != kNoNode && on_cycle[p]) {
      if (--live_out[p] == 0) queue.push_back(p);
    }
  }
  return on_cycle;
}

std::vector<std::int64_t> reachable_counts(const PseudoForest& f) {
  const NodeIndex n = f.node_count();
  std::vector<std::int64_t> count(n, 0);
  std::vector<int> state(n, 0);  // 0 = unvisited, 1 = on stack, 2 = done
  // Iterative DFS with an explicit stack; recursion would overflow on the
  // deep instances (depth can be Θ(n)).
  struct Frame {
    NodeIndex v;
    int stage;
  };
  const auto cycle = on_cycle_mask(f);
  std::vector<Frame> stack;
  for (NodeIndex root = 0; root < n; ++root) {
    if (!f.in_forest(root) || state[root] != 0) continue;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      auto& [v, stage] = stack.back();
      if (stage == 0) {
        stage = 1;
        state[v] = 1;
        for (NodeIndex c : {f.lc[v], f.rc[v]}) {
          if (c != kNoNode && state[c] == 0) stack.push_back({c, 0});
        }
      } else {
        std::int64_t total = 1;
        for (NodeIndex c : {f.lc[v], f.rc[v]}) {
          if (c != kNoNode) total += count[c];
        }
        count[v] = total;
        state[v] = 2;
        stack.pop_back();
      }
    }
  }
  // On the (at most one per component) cycle the tree recurrence double-counts
  // nothing but does not mean "reachable set size"; callers that care about
  // cycles mask them out.  We still expose cycle membership implicitly by
  // leaving the DFS value, which is an upper bound there.
  (void)cycle;
  return count;
}

}  // namespace volcal
