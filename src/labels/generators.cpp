#include "labels/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "labels/hierarchy.hpp"

#include "util/hash.hpp"

namespace volcal {
namespace {

Color random_color(std::uint64_t seed, std::uint64_t salt, std::uint64_t v, double p_red) {
  return to_unit_double(mix64(seed, salt, v)) < p_red ? Color::Red : Color::Blue;
}

// Copy all edges (with ports) of `src` into `builder`, offsetting node
// indices by `offset`.
void append_graph(Graph::Builder& builder, const Graph& src, NodeIndex offset) {
  for (NodeIndex v = 0; v < src.node_count(); ++v) {
    auto nbrs = src.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeIndex w = nbrs[i];
      if (v < w) {
        const Port pv = static_cast<Port>(i + 1);
        const Port pw = src.port_to(w, v);
        builder.add_edge_with_ports(v + offset, w + offset, pv, pw);
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Section 3 workloads
// ---------------------------------------------------------------------------

LeafColoringInstance make_complete_binary_tree(int depth, Color internal_color,
                                               Color leaf_color) {
  if (depth < 1) throw std::invalid_argument("make_complete_binary_tree: depth >= 1");
  const NodeIndex n = (NodeIndex{1} << (depth + 1)) - 1;
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  const NodeIndex first_leaf = (NodeIndex{1} << depth) - 1;
  for (NodeIndex v = 0; v < first_leaf; ++v) {
    const NodeIndex lc = 2 * v + 1;
    const NodeIndex rc = 2 * v + 2;
    // Canonical ports of Prop. 3.12: parent on port 1; children on ports 2/3
    // (1/2 at the root, which has no parent edge).
    const Port lport = (v == 0) ? 1 : 2;
    builder.add_edge_with_ports(v, lc, lport, 1);
    builder.add_edge_with_ports(v, rc, lport + 1, 1);
    labels.tree.left[v] = lport;
    labels.tree.right[v] = lport + 1;
  }
  for (NodeIndex v = 1; v < n; ++v) labels.tree.parent[v] = 1;
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = (v < first_leaf) ? internal_color : leaf_color;
  }
  return {std::move(builder).build(), IdAssignment::sequential(n), std::move(labels)};
}

LeafColoringInstance make_random_full_binary_tree(NodeIndex n_target, std::uint64_t seed,
                                                  double p_red) {
  // A full binary tree has an odd node count: n = 2m+1 with m internal nodes.
  NodeIndex n = std::max<NodeIndex>(3, n_target);
  if (n % 2 == 0) ++n;
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  NodeIndex next_free = 1;
  // Each frame: (node, size of the subtree rooted there — odd).
  struct Frame {
    NodeIndex node;
    NodeIndex size;
  };
  std::vector<Frame> stack{{0, n}};
  std::uint64_t draw = 0;
  while (!stack.empty()) {
    auto [v, size] = stack.back();
    stack.pop_back();
    if (size == 1) continue;  // leaf
    // Random odd split: left gets 1, 3, ..., size-2.
    const NodeIndex options = (size - 1) / 2;  // number of odd values below size-1
    const NodeIndex pick = static_cast<NodeIndex>(mix64(seed, 0xf001, draw++) %
                                                  static_cast<std::uint64_t>(options));
    const NodeIndex left_size = 2 * pick + 1;
    const NodeIndex right_size = size - 1 - left_size;
    const NodeIndex lc = next_free++;
    const NodeIndex rc = next_free++;
    const Port lport = (v == 0) ? 1 : 2;
    builder.add_edge_with_ports(v, lc, lport, 1);
    builder.add_edge_with_ports(v, rc, lport + 1, 1);
    labels.tree.left[v] = lport;
    labels.tree.right[v] = lport + 1;
    labels.tree.parent[lc] = 1;
    labels.tree.parent[rc] = 1;
    stack.push_back({lc, left_size});
    stack.push_back({rc, right_size});
  }
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = random_color(seed, 0xc001, static_cast<std::uint64_t>(v), p_red);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x1d)),
          std::move(labels)};
}

LeafColoringInstance make_cycle_pseudotree(int cycle_len, int hang_depth, std::uint64_t seed) {
  if (cycle_len < 3) throw std::invalid_argument("make_cycle_pseudotree: cycle_len >= 3");
  if (hang_depth < 1) throw std::invalid_argument("make_cycle_pseudotree: hang_depth >= 1");
  const NodeIndex hang_size = (NodeIndex{1} << (hang_depth + 1)) - 1;
  const NodeIndex n = cycle_len + static_cast<NodeIndex>(cycle_len) * hang_size;
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  // Cycle nodes 0..cycle_len-1; ports: 1 = predecessor (P), 2 = successor
  // (LC), 3 = hanging subtree root (RC).
  for (NodeIndex i = 0; i < cycle_len; ++i) {
    const NodeIndex next = (i + 1) % cycle_len;
    builder.add_edge_with_ports(i, next, 2, 1);
    labels.tree.left[i] = 2;
    labels.tree.parent[next] = 1;
    labels.tree.right[i] = 3;
  }
  // Hanging complete subtrees: node layout h_i block starts at
  // cycle_len + i * hang_size, heap-indexed within the block.
  for (NodeIndex i = 0; i < cycle_len; ++i) {
    const NodeIndex base = cycle_len + i * hang_size;
    builder.add_edge_with_ports(i, base, 3, 1);
    labels.tree.parent[base] = 1;
    const NodeIndex first_leaf_local = (NodeIndex{1} << hang_depth) - 1;
    for (NodeIndex local = 0; local < first_leaf_local; ++local) {
      const NodeIndex v = base + local;
      const NodeIndex lc = base + 2 * local + 1;
      const NodeIndex rc = base + 2 * local + 2;
      builder.add_edge_with_ports(v, lc, 2, 1);
      builder.add_edge_with_ports(v, rc, 3, 1);
      labels.tree.left[v] = 2;
      labels.tree.right[v] = 3;
      labels.tree.parent[lc] = 1;
      labels.tree.parent[rc] = 1;
    }
  }
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = random_color(seed, 0xcafe, static_cast<std::uint64_t>(v), 0.5);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x2d)),
          std::move(labels)};
}

LeafColoringInstance make_caterpillar(NodeIndex spine_len, std::uint64_t seed) {
  if (spine_len < 2) throw std::invalid_argument("make_caterpillar: spine_len >= 2");
  // Spine nodes 0..m-1; each spine node i < m-1 has LC = spine i+1 and
  // RC = a private leaf; the last spine node has two private leaves.
  const NodeIndex m = spine_len;
  const NodeIndex n = m + (m - 1) + 2;  // spine + side leaves + two final leaves
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  NodeIndex next_free = m;
  for (NodeIndex i = 0; i < m; ++i) {
    const Port base = (i == 0) ? 1 : 2;
    if (i + 1 < m) {
      builder.add_edge_with_ports(i, i + 1, base, 1);
      labels.tree.left[i] = base;
      labels.tree.parent[i + 1] = 1;
      const NodeIndex leaf = next_free++;
      builder.add_edge_with_ports(i, leaf, base + 1, 1);
      labels.tree.right[i] = base + 1;
      labels.tree.parent[leaf] = 1;
    } else {
      for (int c = 0; c < 2; ++c) {
        const NodeIndex leaf = next_free++;
        builder.add_edge_with_ports(i, leaf, base + c, 1);
        labels.tree.parent[leaf] = 1;
        (c == 0 ? labels.tree.left[i] : labels.tree.right[i]) = base + c;
      }
    }
  }
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = random_color(seed, 0xca7, static_cast<std::uint64_t>(v), 0.5);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x3d)),
          std::move(labels)};
}

LeafColoringInstance make_noise_instance(NodeIndex n, int max_degree, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_noise_instance: n >= 2");
  Graph::Builder builder(n);
  std::vector<int> degree(n, 0);
  // Random matching attempts; gives a bounded-degree graph, not necessarily
  // connected — classification must cope with anything.
  const std::int64_t attempts = 3 * n;
  std::vector<std::vector<NodeIndex>> adj(n);
  for (std::int64_t t = 0; t < attempts; ++t) {
    const NodeIndex a = static_cast<NodeIndex>(mix64(seed, 0xa0, t) % n);
    const NodeIndex b = static_cast<NodeIndex>(mix64(seed, 0xb0, t) % n);
    if (a == b || degree[a] >= max_degree || degree[b] >= max_degree) continue;
    if (std::find(adj[a].begin(), adj[a].end(), b) != adj[a].end()) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
    builder.add_edge(a, b);
    ++degree[a];
    ++degree[b];
  }
  ColoredTreeLabeling labels(n);
  for (NodeIndex v = 0; v < n; ++v) {
    // Arbitrary port claims in [0, max_degree]; dangling values are legal
    // input and resolve to ⊥.
    labels.tree.parent[v] = static_cast<Port>(mix64(seed, 0x11, v) % (max_degree + 1));
    labels.tree.left[v] = static_cast<Port>(mix64(seed, 0x12, v) % (max_degree + 1));
    labels.tree.right[v] = static_cast<Port>(mix64(seed, 0x13, v) % (max_degree + 1));
    labels.color[v] = random_color(seed, 0x14, static_cast<std::uint64_t>(v), 0.5);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x4d)),
          std::move(labels)};
}

// ---------------------------------------------------------------------------
// Section 4 workloads
// ---------------------------------------------------------------------------

namespace {

// Shared skeleton: complete binary tree of `depth` with lateral edges between
// consecutive same-depth nodes.  Fills tree + lateral labels; returns the
// recorded lateral ports so callers can override leaf-level claims.
struct BalancedSkeleton {
  Graph graph;
  BalancedTreeLabeling labels;
  std::vector<Port> lateral_left_port;   // port of the edge to the left peer
  std::vector<Port> lateral_right_port;  // port of the edge to the right peer
};

BalancedSkeleton make_balanced_skeleton(int depth) {
  if (depth < 1) throw std::invalid_argument("balanced skeleton: depth >= 1");
  const NodeIndex n = (NodeIndex{1} << (depth + 1)) - 1;
  Graph::Builder builder(n);
  BalancedTreeLabeling labels(n);
  std::vector<Port> next_port(n, 1);
  const NodeIndex first_leaf = (NodeIndex{1} << depth) - 1;
  // Tree edges, heap order; parent edge first at every child.
  for (NodeIndex v = 0; v < first_leaf; ++v) {
    for (int c = 0; c < 2; ++c) {
      const NodeIndex child = 2 * v + 1 + c;
      const Port pv = next_port[v]++;
      const Port pc = next_port[child]++;
      builder.add_edge_with_ports(v, child, pv, pc);
      (c == 0 ? labels.tree.left[v] : labels.tree.right[v]) = pv;
      labels.tree.parent[child] = pc;
    }
  }
  // Lateral edges: consecutive nodes at every depth d >= 1, left to right.
  std::vector<Port> lat_l(n, kNoPort), lat_r(n, kNoPort);
  for (int d = 1; d <= depth; ++d) {
    const NodeIndex lo = (NodeIndex{1} << d) - 1;
    const NodeIndex hi = (NodeIndex{1} << (d + 1)) - 1;
    for (NodeIndex v = lo; v + 1 < hi; ++v) {
      const Port pv = next_port[v]++;
      const Port pw = next_port[v + 1]++;
      builder.add_edge_with_ports(v, v + 1, pv, pw);
      lat_r[v] = pv;
      lat_l[v + 1] = pw;
    }
  }
  for (NodeIndex v = 0; v < n; ++v) {
    labels.left_nbr[v] = lat_l[v];
    labels.right_nbr[v] = lat_r[v];
  }
  return {std::move(builder).build(), std::move(labels), std::move(lat_l), std::move(lat_r)};
}

}  // namespace

BalancedTreeInstance make_balanced_instance(int depth) {
  auto skeleton = make_balanced_skeleton(depth);
  const NodeIndex n = skeleton.graph.node_count();
  return {std::move(skeleton.graph), IdAssignment::sequential(n), std::move(skeleton.labels)};
}

BalancedTreeInstance make_unbalanced_instance(int depth, int defect_depth, std::uint64_t seed) {
  if (depth < 2) throw std::invalid_argument("make_unbalanced_instance: depth >= 2");
  if (defect_depth < 1 || defect_depth >= depth) {
    throw std::invalid_argument("make_unbalanced_instance: 1 <= defect_depth < depth");
  }
  auto skeleton = make_balanced_skeleton(depth);
  const NodeIndex lo = (NodeIndex{1} << defect_depth) - 1;
  const NodeIndex hi = (NodeIndex{1} << (defect_depth + 1)) - 1;
  const NodeIndex y = lo + static_cast<NodeIndex>(mix64(seed, 0xdef) %
                                                  static_cast<std::uint64_t>(hi - lo));
  // Turn y into a (premature) leaf: the branch below it ends depth -
  // defect_depth levels short, so y's lateral peers see a leaf where an
  // internal node should be (Def. 4.2 type-preserving / leaves conditions
  // fail around y) and everything below y goes inconsistent.
  skeleton.labels.tree.left[y] = kNoPort;
  skeleton.labels.tree.right[y] = kNoPort;
  const NodeIndex n = skeleton.graph.node_count();
  return {std::move(skeleton.graph), IdAssignment::sequential(n), std::move(skeleton.labels)};
}

DisjInstance make_disj_embedding(int depth, const std::vector<std::uint8_t>& a,
                                 const std::vector<std::uint8_t>& b) {
  if (depth < 2) throw std::invalid_argument("make_disj_embedding: depth >= 2");
  const NodeIndex big_n = NodeIndex{1} << (depth - 1);  // N = 2^(k-1)
  if (static_cast<NodeIndex>(a.size()) != big_n || static_cast<NodeIndex>(b.size()) != big_n) {
    throw std::invalid_argument("make_disj_embedding: |a| = |b| = 2^(depth-1) required");
  }
  auto skeleton = make_balanced_skeleton(depth);
  DisjInstance out;
  out.root = 0;
  const NodeIndex v_lo = (NodeIndex{1} << (depth - 1)) - 1;
  for (NodeIndex i = 0; i < big_n; ++i) {
    const NodeIndex vi = v_lo + i;
    out.v.push_back(vi);
    out.u.push_back(2 * vi + 1);
    out.w.push_back(2 * vi + 2);
  }
  // Leaf-level lateral claims: the sibling link u_i <-> w_i is dropped
  // exactly when a_i = b_i = 1 (the graph edge stays; only the labels
  // change, so each claim depends on (a_i, b_i) alone — Prop. 4.9).
  for (NodeIndex i = 0; i < big_n; ++i) {
    if (a[i] && b[i]) {
      skeleton.labels.right_nbr[out.u[i]] = kNoPort;
      skeleton.labels.left_nbr[out.w[i]] = kNoPort;
    }
  }
  const NodeIndex n = skeleton.graph.node_count();
  out.instance = {std::move(skeleton.graph), IdAssignment::sequential(n),
                  std::move(skeleton.labels)};
  return out;
}

// ---------------------------------------------------------------------------
// Section 5 workloads
// ---------------------------------------------------------------------------

namespace {

// Counts nodes of the recursive backbone construction so graphs can be
// allocated up front: size(1) = lens[0]; size(ℓ) = lens[ℓ-1] * (1 + size(ℓ-1)).
NodeIndex hierarchy_size(const std::vector<NodeIndex>& lens, int level) {
  NodeIndex s = lens[0];
  for (int l = 2; l <= level; ++l) s = lens[l - 1] * (1 + s);
  return s;
}

// Emits the component rooted at a fresh backbone of level `lvl`, wiring the
// first backbone node to `parent` via the parent's RC claim when parent is
// given.  Returns the index of the backbone root.
struct HierBuild {
  Graph::Builder* builder;
  TreeLabeling* labels;
  std::vector<Port>* next_port;
  NodeIndex next_free = 0;
};

NodeIndex emit_component(HierBuild& hb, const std::vector<NodeIndex>& lens, int lvl,
                         NodeIndex parent) {
  struct Item {
    int level;
    NodeIndex parent;  // node whose RC claim points at this component's root
  };
  std::vector<Item> work{{lvl, parent}};
  NodeIndex root_of_first = kNoNode;
  while (!work.empty()) {
    auto [level, up] = work.back();
    work.pop_back();
    const NodeIndex len = lens[level - 1];
    NodeIndex prev = kNoNode;
    for (NodeIndex i = 0; i < len; ++i) {
      const NodeIndex v = hb.next_free++;
      if (i == 0) {
        if (root_of_first == kNoNode) root_of_first = v;
        if (up != kNoNode) {
          const Port pu = (*hb.next_port)[up]++;
          const Port pv = (*hb.next_port)[v]++;
          hb.builder->add_edge_with_ports(up, v, pu, pv);
          hb.labels->right[up] = pu;  // component hangs off RC (Def. 5.1)
          hb.labels->parent[v] = pv;
        }
      } else {
        const Port pp = (*hb.next_port)[prev]++;
        const Port pv = (*hb.next_port)[v]++;
        hb.builder->add_edge_with_ports(prev, v, pp, pv);
        hb.labels->left[prev] = pp;  // backbone edge (same level, via LC)
        hb.labels->parent[v] = pv;
      }
      if (level >= 2) work.push_back({level - 1, v});
      prev = v;
    }
  }
  return root_of_first;
}

}  // namespace

HierarchicalInstance make_hierarchical_instance_lens(const std::vector<NodeIndex>& lens,
                                                     std::uint64_t seed) {
  if (lens.empty()) throw std::invalid_argument("hierarchical: lens non-empty");
  for (NodeIndex len : lens) {
    if (len < 1) throw std::invalid_argument("hierarchical: backbone lengths >= 1");
  }
  const int k = static_cast<int>(lens.size());
  const NodeIndex n = hierarchy_size(lens, k);
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  std::vector<Port> next_port(n, 1);
  HierBuild hb{&builder, &labels.tree, &next_port, 0};
  emit_component(hb, lens, k, kNoNode);
  if (hb.next_free != n) throw std::logic_error("hierarchical: size accounting mismatch");
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = random_color(seed, 0x51ea, static_cast<std::uint64_t>(v), 0.5);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x5d)),
          std::move(labels)};
}

HierarchicalInstance make_hierarchical_instance(int k, NodeIndex backbone_len,
                                                std::uint64_t seed) {
  if (k < 1) throw std::invalid_argument("hierarchical: k >= 1");
  return make_hierarchical_instance_lens(std::vector<NodeIndex>(k, backbone_len), seed);
}

HierarchicalInstance make_hierarchical_cycle_instance(int k, NodeIndex cycle_len,
                                                      NodeIndex backbone_len,
                                                      std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("hierarchical cycle: k >= 2");
  if (cycle_len < 3) throw std::invalid_argument("hierarchical cycle: cycle_len >= 3");
  const std::vector<NodeIndex> lens(static_cast<std::size_t>(k - 1), backbone_len);
  const NodeIndex sub = hierarchy_size(lens, k - 1);
  const NodeIndex n = cycle_len + cycle_len * sub;
  Graph::Builder builder(n);
  ColoredTreeLabeling labels(n);
  std::vector<Port> next_port(n, 1);
  // Cycle nodes 0..cycle_len-1: port 1 = predecessor (P), 2 = successor (LC),
  // 3 = hanging component root (RC).
  for (NodeIndex i = 0; i < cycle_len; ++i) {
    const NodeIndex nxt = (i + 1) % cycle_len;
    builder.add_edge_with_ports(i, nxt, 2, 1);
    labels.tree.left[i] = 2;
    labels.tree.parent[nxt] = 1;
    labels.tree.right[i] = 3;
    next_port[i] = 4;  // cycle ports 1..3 are spoken for
  }
  HierBuild hb{&builder, &labels.tree, &next_port, cycle_len};
  for (NodeIndex i = 0; i < cycle_len; ++i) {
    const NodeIndex root = emit_component(hb, lens, k - 1, kNoNode);
    // Wire the hanging root to cycle node i by hand: emit_component was asked
    // for a rootless component, so attach via the reserved port 3.
    const Port proot = next_port[root]++;
    builder.add_edge_with_ports(i, root, 3, proot);
    labels.tree.parent[root] = proot;
  }
  if (hb.next_free != n) throw std::logic_error("hierarchical cycle: size mismatch");
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = random_color(seed, 0xc1c1e, static_cast<std::uint64_t>(v), 0.5);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x8d)),
          std::move(labels)};
}

// ---------------------------------------------------------------------------
// Section 6 workloads
// ---------------------------------------------------------------------------

HybridInstance make_hybrid_instance(int k, NodeIndex backbone_len, int bt_depth,
                                    std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("hybrid: k >= 2");
  if (backbone_len < 1 || bt_depth < 1) throw std::invalid_argument("hybrid: sizes >= 1");
  // Backbone skeleton for levels 2..k: reuse the hierarchical emitter with
  // k-1 backbone levels, then hang a BalancedTree component under every
  // bottom-level (construction level 1 == problem level 2) node.
  const std::vector<NodeIndex> lens(static_cast<std::size_t>(k - 1), backbone_len);
  const NodeIndex backbone_n = hierarchy_size(lens, k - 1);
  const NodeIndex bt_size = (NodeIndex{1} << (bt_depth + 1)) - 1;

  // First materialize the backbone graph + labels.
  Graph::Builder bb_builder(backbone_n);
  TreeLabeling bb_tree(backbone_n);
  std::vector<Port> bb_next_port(backbone_n, 1);
  HierBuild hb{&bb_builder, &bb_tree, &bb_next_port, 0};
  emit_component(hb, lens, k - 1, kNoNode);
  Graph bb_graph = std::move(bb_builder).build();

  // Bottom-level backbone nodes are those with no RC claim yet (construction
  // level 1); each will adopt a BalancedTree component root as RC child.
  std::vector<NodeIndex> bottom;
  for (NodeIndex v = 0; v < backbone_n; ++v) {
    if (bb_tree.right[v] == kNoPort) bottom.push_back(v);
  }

  auto bt_proto = make_balanced_skeleton(bt_depth);
  const NodeIndex n = backbone_n + static_cast<NodeIndex>(bottom.size()) * bt_size;
  Graph::Builder builder(n);
  append_graph(builder, bb_graph, 0);
  HybridLabeling labels(n);
  // Backbone labels carry over; input levels are construction level + 1.
  {
    Hierarchy bh(bb_graph, bb_tree, k + 1);
    for (NodeIndex v = 0; v < backbone_n; ++v) {
      labels.bal.tree.parent[v] = bb_tree.parent[v];
      labels.bal.tree.left[v] = bb_tree.left[v];
      labels.bal.tree.right[v] = bb_tree.right[v];
      labels.level_in[v] = std::min(bh.level(v) + 1, k + 1);
    }
  }
  NodeIndex base = backbone_n;
  for (NodeIndex host : bottom) {
    append_graph(builder, bt_proto.graph, base);
    for (NodeIndex local = 0; local < bt_size; ++local) {
      const NodeIndex v = base + local;
      labels.bal.tree.parent[v] = bt_proto.labels.tree.parent[local];
      labels.bal.tree.left[v] = bt_proto.labels.tree.left[local];
      labels.bal.tree.right[v] = bt_proto.labels.tree.right[local];
      labels.bal.left_nbr[v] = bt_proto.labels.left_nbr[local];
      labels.bal.right_nbr[v] = bt_proto.labels.right_nbr[local];
      labels.level_in[v] = 1;
    }
    // Attach: host's RC claim -> component root; root's parent claim -> host.
    // Next free port = degree in the source graph + 1 (each gains one edge).
    const NodeIndex root = base;
    const Port host_port = static_cast<Port>(bb_graph.degree(host) + 1);
    const Port root_port = static_cast<Port>(bt_proto.graph.degree(0) + 1);
    builder.add_edge_with_ports(host, root, host_port, root_port);
    labels.bal.tree.right[host] = host_port;
    labels.bal.tree.parent[root] = root_port;
    base += bt_size;
  }
  for (NodeIndex v = 0; v < n; ++v) {
    labels.color[v] = random_color(seed, 0x6b1d, static_cast<std::uint64_t>(v), 0.5);
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x6d)),
          std::move(labels)};
}

HHInstance make_hh_instance(int k, int l, NodeIndex n_half_target, std::uint64_t seed) {
  if (k < 2 || l < k) throw std::invalid_argument("hh: require 2 <= k <= l");
  // Side 0: Hierarchical-THC(l) with backbones ~ n^(1/l).
  const auto bl = std::max<NodeIndex>(
      2, static_cast<NodeIndex>(std::llround(std::pow(static_cast<double>(n_half_target),
                                                      1.0 / static_cast<double>(l)))));
  auto hier = make_hierarchical_instance(l, bl, mix64(seed, 0x70));
  // Side 1: Hybrid-THC(k) with backbone and component sizes ~ n^(1/k).
  const auto bk = std::max<NodeIndex>(
      2, static_cast<NodeIndex>(std::llround(std::pow(static_cast<double>(n_half_target),
                                                      1.0 / static_cast<double>(k)))));
  const int bt_depth = std::max(1, static_cast<int>(std::floor(std::log2(bk + 1.0)) - 1));
  auto hybrid = make_hybrid_instance(k, bk, bt_depth, mix64(seed, 0x71));

  const NodeIndex n0 = hier.node_count();
  const NodeIndex n1 = hybrid.node_count();
  const NodeIndex n = n0 + n1;
  Graph::Builder builder(n);
  append_graph(builder, hier.graph, 0);
  append_graph(builder, hybrid.graph, n0);
  HHLabeling labels(n);
  for (NodeIndex v = 0; v < n0; ++v) {
    labels.hybrid.bal.tree.parent[v] = hier.labels.tree.parent[v];
    labels.hybrid.bal.tree.left[v] = hier.labels.tree.left[v];
    labels.hybrid.bal.tree.right[v] = hier.labels.tree.right[v];
    labels.hybrid.color[v] = hier.labels.color[v];
    labels.hybrid.level_in[v] = 1;  // ignored on side 0 (Def. 6.4)
    labels.side[v] = 0;
  }
  for (NodeIndex v = 0; v < n1; ++v) {
    const NodeIndex t = n0 + v;
    labels.hybrid.bal.tree.parent[t] = hybrid.labels.bal.tree.parent[v];
    labels.hybrid.bal.tree.left[t] = hybrid.labels.bal.tree.left[v];
    labels.hybrid.bal.tree.right[t] = hybrid.labels.bal.tree.right[v];
    labels.hybrid.bal.left_nbr[t] = hybrid.labels.bal.left_nbr[v];
    labels.hybrid.bal.right_nbr[t] = hybrid.labels.bal.right_nbr[v];
    labels.hybrid.color[t] = hybrid.labels.color[v];
    labels.hybrid.level_in[t] = hybrid.labels.level_in[v];
    labels.side[t] = 1;
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, mix64(seed, 0x7d)),
          std::move(labels)};
}

// ---------------------------------------------------------------------------
// Section 7 gadgets
// ---------------------------------------------------------------------------

TwoTreeGadget make_two_tree_gadget(int depth, std::uint64_t seed) {
  if (depth < 1) throw std::invalid_argument("two_tree_gadget: depth >= 1");
  const NodeIndex tree_n = (NodeIndex{1} << (depth + 1)) - 1;
  const NodeIndex n = 2 * tree_n;
  Graph::Builder builder(n);
  auto build_tree = [&](NodeIndex base) {
    const NodeIndex first_leaf = (NodeIndex{1} << depth) - 1;
    for (NodeIndex v = 0; v < first_leaf; ++v) {
      // Port 1 everywhere at the root is taken by the root-root edge, so
      // children sit on ports 2/3 at both roots and internal nodes alike.
      builder.add_edge_with_ports(base + v, base + 2 * v + 1, 2, 1);
      builder.add_edge_with_ports(base + v, base + 2 * v + 2, 3, 1);
    }
  };
  // Root-root edge first: port 1 at both roots.
  builder.add_edge_with_ports(0, tree_n, 1, 1);
  build_tree(0);
  build_tree(tree_n);
  TwoTreeGadget out;
  out.root_u = 0;
  out.root_v = tree_n;
  const NodeIndex first_leaf = (NodeIndex{1} << depth) - 1;
  for (NodeIndex i = first_leaf; i < tree_n; ++i) {
    out.u_leaves.push_back(i);
    out.v_leaves.push_back(tree_n + i);
    out.bits.push_back(static_cast<std::uint8_t>(mix64(seed, 0x2717, i) & 1));
  }
  out.graph = std::move(builder).build();
  out.ids = IdAssignment::sequential(n);
  return out;
}

RingInstance make_ring(NodeIndex n, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("make_ring: n >= 3");
  Graph::Builder builder(n);
  for (NodeIndex i = 0; i < n; ++i) {
    builder.add_edge_with_ports(i, (i + 1) % n, 1, 2);  // 1 = successor, 2 = predecessor
  }
  return {std::move(builder).build(), IdAssignment::shuffled(n, seed)};
}

}  // namespace volcal
