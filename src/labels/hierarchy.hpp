// The hierarchical forest G_k (paper Definitions 5.1-5.2, Observations
// 5.3-5.4) derived from a tree labeling.
//
// Section 5 uses a *relaxed* link structure compared to Def. 3.3: a level-1
// backbone node legitimately has RC = ⊥ (Obs. 5.4), so "internal" in the
// strict sense never applies there.  We therefore build the forest from
// mutually-acknowledged child claims: u is v's LC-link iff u = LC(v) and
// v = P(u) (and symmetrically for RC), with LC and RC claims distinct.
//
// level(v) = 1 if v has no RC-link, else 1 + level(RC-link).  Values are
// capped at `cap` (= k+1): a stored `cap` means "level > k or undefined"
// (the RC chain cycles), which is all the problems distinguish.
//
// Backbones — maximal equal-level LC-chains — are paths or cycles; each node
// of a level-ℓ backbone (ℓ >= 2) hangs a level-(ℓ-1) subtree off its RC link.
//
// This is the *global* analysis used by generators, verifiers, and tests.
// Query-model algorithms never touch it; they recompute levels locally through
// the query engine (Obs. 5.3 guarantees they can).
#pragma once

#include <cstdint>
#include <vector>

#include "labels/tree_labeling.hpp"

namespace volcal {

class Hierarchy {
 public:
  // Build from label claims; levels computed from the RC-chain and capped.
  Hierarchy(const Graph& g, const TreeLabeling& l, int cap);

  // Build with externally supplied levels (Hybrid-THC, Def. 6.1, where
  // level(v) is an explicit input label).  Supplied levels are clamped to
  // [1, cap].
  Hierarchy(const Graph& g, const TreeLabeling& l, int cap, std::vector<int> input_levels);

  int cap() const { return cap_; }
  NodeIndex node_count() const { return static_cast<NodeIndex>(level_.size()); }

  // Mutually-acknowledged links (kNoNode if absent).
  NodeIndex lc(NodeIndex v) const { return lc_[v]; }
  NodeIndex rc(NodeIndex v) const { return rc_[v]; }
  NodeIndex up(NodeIndex v) const { return up_[v]; }

  int level(NodeIndex v) const { return level_[v]; }
  // "In the hierarchy" = level <= k (nodes at level > k are exempt, cond. 1).
  bool in_hierarchy(NodeIndex v) const { return level_[v] < cap_; }

  // Backbone navigation (equal-level LC-chain edges of G_k).
  NodeIndex backbone_next(NodeIndex v) const;  // towards LC
  NodeIndex backbone_prev(NodeIndex v) const;  // towards P
  // The level-(ℓ-1) root hanging below a level-ℓ node via RC, or kNoNode.
  NodeIndex down(NodeIndex v) const;

  bool is_level_root(NodeIndex v) const;  // Def. 5.2: P-link absent or v = RC(P(v))
  bool is_level_leaf(NodeIndex v) const;  // Def. 5.2: LC-link absent (in G_k)

  struct Backbone {
    int level = 0;
    bool is_cycle = false;
    // nodes[i+1] = backbone_next(nodes[i]); nodes[0] is the root end of a
    // path, or an arbitrary rotation of a cycle.
    std::vector<NodeIndex> nodes;
  };
  const std::vector<Backbone>& backbones() const { return backbones_; }
  std::int64_t backbone_of(NodeIndex v) const { return backbone_of_[v]; }

  // |H_ℓ|: size of the sub-hierarchy rooted at backbone b (the backbone plus
  // all descendants at lower levels) — Definition 5.10's light/heavy weight.
  std::int64_t subtree_weight(std::int64_t backbone_id) const {
    return subtree_weight_[backbone_id];
  }
  // Weight of the sub-hierarchy hanging below v via its RC link; 0 if none.
  std::int64_t below_weight(NodeIndex v) const;

 private:
  void build_links(const Graph& g, const TreeLabeling& l);
  void compute_levels_from_rc_chain();
  void decompose_backbones();

  int cap_;
  std::vector<NodeIndex> lc_, rc_, up_;
  std::vector<int> level_;
  std::vector<Backbone> backbones_;
  std::vector<std::int64_t> backbone_of_;
  std::vector<std::int64_t> subtree_weight_;
};

}  // namespace volcal
