#include "labels/hierarchy.hpp"

#include <algorithm>
#include <stdexcept>

namespace volcal {

void Hierarchy::build_links(const Graph& g, const TreeLabeling& l) {
  const NodeIndex n = l.node_count();
  lc_.assign(n, kNoNode);
  rc_.assign(n, kNoNode);
  up_.assign(n, kNoNode);
  for (NodeIndex v = 0; v < n; ++v) {
    // Degenerate claims (LC = RC, or P colliding with a child port) void the
    // child links, mirroring conditions (3)-(4) of Def. 3.3.
    if (l.left[v] != kNoPort && l.left[v] == l.right[v]) continue;
    const bool parent_collides_left = l.parent[v] != kNoPort && l.parent[v] == l.left[v];
    const bool parent_collides_right = l.parent[v] != kNoPort && l.parent[v] == l.right[v];
    const NodeIndex lc = left_child_of(g, l, v);
    const NodeIndex rc = right_child_of(g, l, v);
    if (lc != kNoNode && !parent_collides_left && parent_of(g, l, lc) == v && lc != v) {
      lc_[v] = lc;
    }
    if (rc != kNoNode && !parent_collides_right && parent_of(g, l, rc) == v && rc != v &&
        rc != lc_[v]) {
      rc_[v] = rc;
    }
  }
  // up-link: acknowledged parent.  Uniqueness holds because u's parent claim
  // resolves to a single node.
  for (NodeIndex v = 0; v < n; ++v) {
    if (lc_[v] != kNoNode) up_[lc_[v]] = v;
    if (rc_[v] != kNoNode) up_[rc_[v]] = v;
  }
}

void Hierarchy::compute_levels_from_rc_chain() {
  const NodeIndex n = static_cast<NodeIndex>(lc_.size());
  level_.assign(n, 0);
  for (NodeIndex v = 0; v < n; ++v) {
    if (level_[v] != 0) continue;
    std::vector<NodeIndex> chain;
    NodeIndex cur = v;
    int base;
    while (true) {
      if (level_[cur] != 0) {
        base = level_[cur];
        break;
      }
      if (static_cast<int>(chain.size()) > cap_) {
        base = cap_;  // deeper than the cap, or an RC cycle
        break;
      }
      chain.push_back(cur);
      const NodeIndex rc = rc_[cur];
      if (rc == kNoNode) {
        base = 0;  // the node we just pushed has level 1
        break;
      }
      cur = rc;
    }
    while (!chain.empty()) {
      base = std::min(base + 1, cap_);
      level_[chain.back()] = base;
      chain.pop_back();
    }
  }
}

Hierarchy::Hierarchy(const Graph& g, const TreeLabeling& l, int cap) : cap_(cap) {
  if (cap < 2) throw std::invalid_argument("Hierarchy: cap must be >= 2");
  build_links(g, l);
  compute_levels_from_rc_chain();
  decompose_backbones();
}

Hierarchy::Hierarchy(const Graph& g, const TreeLabeling& l, int cap,
                     std::vector<int> input_levels)
    : cap_(cap) {
  if (cap < 2) throw std::invalid_argument("Hierarchy: cap must be >= 2");
  if (static_cast<NodeIndex>(input_levels.size()) != l.node_count()) {
    throw std::invalid_argument("Hierarchy: input level vector size mismatch");
  }
  build_links(g, l);
  level_ = std::move(input_levels);
  for (auto& lv : level_) lv = std::clamp(lv, 1, cap_);
  decompose_backbones();
}

void Hierarchy::decompose_backbones() {
  const NodeIndex n = node_count();
  backbone_of_.assign(n, -1);
  backbones_.clear();
  for (NodeIndex v = 0; v < n; ++v) {
    if (!in_hierarchy(v) || backbone_of_[v] != -1) continue;
    NodeIndex head = v;
    bool cycle = false;
    {
      NodeIndex slow = v, fast = v;
      while (true) {
        NodeIndex prev = backbone_prev(head);
        if (prev == kNoNode) break;
        head = prev;
        slow = backbone_prev(slow);
        fast = backbone_prev(fast);
        if (fast != kNoNode) fast = backbone_prev(fast);
        if (fast != kNoNode && slow == fast) {
          cycle = true;
          head = v;  // arbitrary rotation
          break;
        }
      }
    }
    Backbone b;
    b.level = level_[v];
    b.is_cycle = cycle;
    NodeIndex cur = head;
    const auto id = static_cast<std::int64_t>(backbones_.size());
    while (cur != kNoNode && backbone_of_[cur] == -1) {
      backbone_of_[cur] = id;
      b.nodes.push_back(cur);
      cur = backbone_next(cur);
    }
    backbones_.push_back(std::move(b));
  }

  // Subtree weights, lowest levels first so below-weights are ready.
  subtree_weight_.assign(backbones_.size(), 0);
  std::vector<std::size_t> order(backbones_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return backbones_[a].level < backbones_[b].level;
  });
  for (std::size_t bi : order) {
    std::int64_t w = static_cast<std::int64_t>(backbones_[bi].nodes.size());
    for (NodeIndex v : backbones_[bi].nodes) {
      const NodeIndex d = down(v);
      if (d != kNoNode && backbone_of_[d] != -1) w += subtree_weight_[backbone_of_[d]];
    }
    subtree_weight_[bi] = w;
  }
}

NodeIndex Hierarchy::backbone_next(NodeIndex v) const {
  if (!in_hierarchy(v)) return kNoNode;
  const NodeIndex lc = lc_[v];
  if (lc == kNoNode || level_[lc] != level_[v]) return kNoNode;
  return lc;
}

NodeIndex Hierarchy::backbone_prev(NodeIndex v) const {
  if (!in_hierarchy(v)) return kNoNode;
  const NodeIndex p = up_[v];
  if (p == kNoNode || level_[p] != level_[v]) return kNoNode;
  if (lc_[p] != v) return kNoNode;  // v hangs off RC: p is one level up
  return p;
}

NodeIndex Hierarchy::down(NodeIndex v) const {
  if (!in_hierarchy(v)) return kNoNode;
  const NodeIndex rc = rc_[v];
  if (rc == kNoNode || level_[rc] != level_[v] - 1) return kNoNode;
  return rc;
}

bool Hierarchy::is_level_root(NodeIndex v) const {
  if (!in_hierarchy(v)) return false;
  const NodeIndex p = up_[v];
  if (p == kNoNode) return true;
  if (rc_[p] == v) return true;  // Def. 5.2: v = RC(P(v))
  // A parent outside the hierarchy (or at a mismatched level) also leaves v
  // without a backbone predecessor; treat v as the root of its chain.
  return backbone_prev(v) == kNoNode && level_[p] != level_[v];
}

bool Hierarchy::is_level_leaf(NodeIndex v) const {
  if (!in_hierarchy(v)) return false;
  return backbone_next(v) == kNoNode;
}

std::int64_t Hierarchy::below_weight(NodeIndex v) const {
  const NodeIndex d = down(v);
  if (d == kNoNode) return 0;
  const std::int64_t b = backbone_of_[d];
  return b == -1 ? 0 : subtree_weight_[b];
}

}  // namespace volcal
