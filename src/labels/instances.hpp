// Instance bundles: a graph, an ID assignment, and a problem input labeling.
// These are the (G, L) pairs of the paper's Definition 2.4, specialized per
// problem family.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "labels/ids.hpp"
#include "labels/tree_labeling.hpp"

namespace volcal {

// Hybrid-THC input (Def. 6.1): colored balanced tree labeling + explicit
// level(v) ∈ [k+1] per node.
struct HybridLabeling {
  BalancedTreeLabeling bal;
  std::vector<Color> color;
  std::vector<int> level_in;

  explicit HybridLabeling(NodeIndex n = 0) : bal(n), color(n, Color::Red), level_in(n, 1) {}
  NodeIndex node_count() const { return bal.node_count(); }
};

// HH-THC input (Def. 6.4): Hybrid input + selector bit b_v.
struct HHLabeling {
  HybridLabeling hybrid;
  std::vector<std::uint8_t> side;  // b_v ∈ {0, 1}

  explicit HHLabeling(NodeIndex n = 0) : hybrid(n), side(n, 0) {}
  NodeIndex node_count() const { return hybrid.node_count(); }
};

template <typename Labels>
struct Instance {
  Graph graph;
  IdAssignment ids;
  Labels labels;

  NodeIndex node_count() const { return graph.node_count(); }
};

using LeafColoringInstance = Instance<ColoredTreeLabeling>;
using BalancedTreeInstance = Instance<BalancedTreeLabeling>;
using HierarchicalInstance = Instance<ColoredTreeLabeling>;
using HybridInstance = Instance<HybridLabeling>;
using HHInstance = Instance<HHLabeling>;

}  // namespace volcal
