// Instance generators: every workload family used by the paper's
// constructions, proofs, and our benchmarks.
//
// Port conventions: generators assign contiguous ports (the model requires a
// bijection onto [deg(v)]) and then derive the label values from the actual
// assigned ports, so instances are always well-formed regardless of node
// degree at the boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "labels/instances.hpp"

namespace volcal {

// --- Section 3: LeafColoring workloads --------------------------------------

// Complete (rooted) binary tree of the given depth with the canonical labeling
// of Prop. 3.12: heap-ordered IDs (root = 1), parent on port 1, children on
// ports 2/3 (1/2 at the root).  Internal nodes colored `internal_color`,
// leaves colored `leaf_color`.
LeafColoringInstance make_complete_binary_tree(int depth, Color internal_color,
                                               Color leaf_color);

// Random full binary tree (every internal node has exactly two children) on
// ~n_target nodes; colors iid Red with probability p_red.  Deterministic in
// seed.
LeafColoringInstance make_random_full_binary_tree(NodeIndex n_target, std::uint64_t seed,
                                                  double p_red = 0.5);

// Pseudo-tree whose G_T contains one directed cycle of `cycle_len` internal
// nodes, each hanging a full binary subtree of depth `hang_depth` off its
// right child (exercises the cycle branch of RWtoLeaf, Alg. 1 line 4).
LeafColoringInstance make_cycle_pseudotree(int cycle_len, int hang_depth, std::uint64_t seed);

// Caterpillar: a spine of internal nodes, each with one leaf child; depth
// Θ(n) but every node is within distance 1 of a leaf.
LeafColoringInstance make_caterpillar(NodeIndex spine_len, std::uint64_t seed);

// Arbitrary (generally inconsistent) tree labeling on a random bounded-degree
// graph: used by classification property tests — nothing about the labels is
// guaranteed.
LeafColoringInstance make_noise_instance(NodeIndex n, int max_degree, std::uint64_t seed);

// --- Section 4: BalancedTree workloads --------------------------------------

// The lateral structure of Fig. 5: a complete binary tree of the given depth
// with lateral edges between consecutive same-depth nodes and LN/RN labels
// filled in, globally compatible (every consistent node satisfies Def. 4.2).
BalancedTreeInstance make_balanced_instance(int depth);

// Same skeleton, but the subtree under one node at `defect_depth` is pruned
// one level short, creating incompatible nodes (exercises Lemma 4.6 and
// output case (U, ·)).
BalancedTreeInstance make_unbalanced_instance(int depth, int defect_depth, std::uint64_t seed);

// The disjointness embedding E(a, b) of Prop. 4.9.  |a| = |b| = 2^(depth-1).
// Records the index of each v_i (depth-(k-1) node) and its children u_i, w_i
// so the communication accounting can identify the charged queries.
struct DisjInstance {
  BalancedTreeInstance instance;
  std::vector<NodeIndex> v;  // v_i, i = 0..N-1
  std::vector<NodeIndex> u;  // u_i = LC(v_i)
  std::vector<NodeIndex> w;  // w_i = RC(v_i)
  NodeIndex root = kNoNode;
};
DisjInstance make_disj_embedding(int depth, const std::vector<std::uint8_t>& a,
                                 const std::vector<std::uint8_t>& b);

// --- Section 5: Hierarchical-THC workloads ----------------------------------

// The "balanced instance" of Prop. 5.13: k levels of backbones, every backbone
// a path of length `backbone_len`, level-(ℓ-1) components hanging under every
// level-ℓ backbone node.  n ≈ backbone_len^k.  Colors iid in seed.
HierarchicalInstance make_hierarchical_instance(int k, NodeIndex backbone_len,
                                                std::uint64_t seed);

// Variant with per-level backbone lengths (lens[ℓ-1] = length of level-ℓ
// backbones); mixes shallow and deep components for solver stress tests.
HierarchicalInstance make_hierarchical_instance_lens(const std::vector<NodeIndex>& lens,
                                                     std::uint64_t seed);

// Variant whose *top* backbone is a cycle of length cycle_len (Obs. 5.4:
// equal-level components may be cycles); every cycle node hangs a regular
// level-(k-1) component of backbone length `backbone_len` (k >= 2,
// cycle_len >= 3).  Exercises the solvers' min-ID unanimity rule.
HierarchicalInstance make_hierarchical_cycle_instance(int k, NodeIndex cycle_len,
                                                      NodeIndex backbone_len,
                                                      std::uint64_t seed);

// --- Section 6: Hybrid and HH workloads -------------------------------------

// Hybrid-THC(k): levels 2..k form hierarchical backbones of length
// `backbone_len`; below every level-2 node hangs a BalancedTree instance
// (complete, compatible, depth `bt_depth`).  level_in is set explicitly.
HybridInstance make_hybrid_instance(int k, NodeIndex backbone_len, int bt_depth,
                                    std::uint64_t seed);

// HH-THC(k, ℓ): disjoint union of a Hierarchical-THC(ℓ) instance (side bit 0)
// and a Hybrid-THC(k) instance (side bit 1), each sized ~n_half.
HHInstance make_hh_instance(int k, int l, NodeIndex n_half_target, std::uint64_t seed);

// --- Section 7 gadgets -------------------------------------------------------

// Example 7.6: two complete binary trees of the given depth with roots joined
// by a single edge; each leaf v_i of the second tree holds an input bit b_i,
// and each leaf u_i of the first tree must output b_i.
struct TwoTreeGadget {
  Graph graph;
  IdAssignment ids;
  std::vector<NodeIndex> u_leaves;  // leaves under the first root, left to right
  std::vector<NodeIndex> v_leaves;  // leaves under the second root
  std::vector<std::uint8_t> bits;   // bits[i] lives at v_leaves[i]
  NodeIndex root_u = kNoNode;
  NodeIndex root_v = kNoNode;
};
TwoTreeGadget make_two_tree_gadget(int depth, std::uint64_t seed);

// Directed ring (cycle) on n nodes for Cole-Vishkin coloring; port 1 =
// successor, port 2 = predecessor.  IDs shuffled by seed.
struct RingInstance {
  Graph graph;
  IdAssignment ids;
};
RingInstance make_ring(NodeIndex n, std::uint64_t seed);

}  // namespace volcal
