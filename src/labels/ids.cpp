#include "labels/ids.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/hash.hpp"

namespace volcal {

IdAssignment::IdAssignment(std::vector<NodeId> ids) : ids_(std::move(ids)) {
  std::unordered_set<NodeId> seen;
  seen.reserve(ids_.size());
  for (NodeId id : ids_) {
    if (!seen.insert(id).second) {
      throw std::invalid_argument("IdAssignment: duplicate node ID");
    }
  }
}

IdAssignment IdAssignment::sequential(NodeIndex n) {
  std::vector<NodeId> ids(n);
  for (NodeIndex v = 0; v < n; ++v) ids[v] = static_cast<NodeId>(v) + 1;
  return IdAssignment(std::move(ids));
}

IdAssignment IdAssignment::shuffled(NodeIndex n, std::uint64_t seed, double alpha) {
  if (alpha < 1.0) throw std::invalid_argument("IdAssignment: alpha must be >= 1");
  const auto space = static_cast<NodeId>(std::llround(std::pow(static_cast<double>(n), alpha)));
  const NodeId limit = std::max<NodeId>(space, static_cast<NodeId>(n));
  // Rejection-sample distinct IDs from [1, limit]; deterministic in seed.
  std::vector<NodeId> ids;
  ids.reserve(n);
  std::unordered_set<NodeId> used;
  used.reserve(n);
  std::uint64_t counter = 0;
  while (ids.size() < static_cast<std::size_t>(n)) {
    NodeId candidate = 1 + mix64(seed, 0x1d5u, counter++) % limit;
    if (used.insert(candidate).second) ids.push_back(candidate);
  }
  return IdAssignment(std::move(ids));
}

}  // namespace volcal
