// Interpretation of LabelUpdate channels (graph/mutation.hpp) for each typed
// labeling.  The graph layer only transports (node, channel, value) triples;
// this header is where a channel lands in a concrete label vector — and where
// a channel a labeling does not carry is rejected.
//
// Values stay inside the labelings' claim domains: port claims are claims
// (Def. 3.1 — nothing forces them to describe a real tree), so any
// non-negative port value is admissible and dangling claims resolve to ⊥
// exactly as generated inconsistencies do.  Color / side are bits; level is
// clamped to non-negative (the solvers classify out-of-band level claims as
// inconsistencies, same as shape-variant defects).
#pragma once

#include <stdexcept>
#include <string>

#include "graph/mutation.hpp"
#include "labels/instances.hpp"

namespace volcal {

namespace detail {

[[noreturn]] inline void throw_bad_channel(LabelChannel c, const char* labeling) {
  throw std::invalid_argument(std::string("apply_label_update: channel '") +
                              label_channel_name(c) + "' is not carried by " + labeling +
                              " labels");
}

inline void check_bit(LabelChannel c, int value) {
  if (value != 0 && value != 1) {
    throw std::invalid_argument(std::string("apply_label_update: channel '") +
                                label_channel_name(c) + "' takes values {0, 1}, got " +
                                std::to_string(value));
  }
}

inline void check_port_claim(LabelChannel c, int value) {
  if (value < 0 || value > 0x7fff) {
    throw std::invalid_argument(std::string("apply_label_update: port claim '") +
                                label_channel_name(c) + "' out of range: " +
                                std::to_string(value));
  }
}

// The three channels every labeling carries.  Returns false if `c` is not a
// tree channel (the caller then tries its own channels).
inline bool apply_tree_channel(TreeLabeling& t, NodeIndex v, LabelChannel c, int value) {
  switch (c) {
    case LabelChannel::Parent:
      check_port_claim(c, value);
      t.parent[static_cast<std::size_t>(v)] = static_cast<Port>(value);
      return true;
    case LabelChannel::Left:
      check_port_claim(c, value);
      t.left[static_cast<std::size_t>(v)] = static_cast<Port>(value);
      return true;
    case LabelChannel::Right:
      check_port_claim(c, value);
      t.right[static_cast<std::size_t>(v)] = static_cast<Port>(value);
      return true;
    default:
      return false;
  }
}

inline bool apply_balanced_channel(BalancedTreeLabeling& b, NodeIndex v, LabelChannel c,
                                   int value) {
  if (apply_tree_channel(b.tree, v, c, value)) return true;
  switch (c) {
    case LabelChannel::LeftNbr:
      check_port_claim(c, value);
      b.left_nbr[static_cast<std::size_t>(v)] = static_cast<Port>(value);
      return true;
    case LabelChannel::RightNbr:
      check_port_claim(c, value);
      b.right_nbr[static_cast<std::size_t>(v)] = static_cast<Port>(value);
      return true;
    default:
      return false;
  }
}

}  // namespace detail

inline void apply_label_update(ColoredTreeLabeling& l, const LabelUpdate& u) {
  if (detail::apply_tree_channel(l.tree, u.node, u.channel, u.value)) return;
  if (u.channel == LabelChannel::InColor) {
    detail::check_bit(u.channel, u.value);
    l.color[static_cast<std::size_t>(u.node)] = static_cast<Color>(u.value);
    return;
  }
  detail::throw_bad_channel(u.channel, "colored-tree");
}

inline void apply_label_update(BalancedTreeLabeling& l, const LabelUpdate& u) {
  if (detail::apply_balanced_channel(l, u.node, u.channel, u.value)) return;
  detail::throw_bad_channel(u.channel, "balanced-tree");
}

inline void apply_label_update(HybridLabeling& l, const LabelUpdate& u) {
  if (detail::apply_balanced_channel(l.bal, u.node, u.channel, u.value)) return;
  switch (u.channel) {
    case LabelChannel::InColor:
      detail::check_bit(u.channel, u.value);
      l.color[static_cast<std::size_t>(u.node)] = static_cast<Color>(u.value);
      return;
    case LabelChannel::Level:
      if (u.value < 0) {
        throw std::invalid_argument("apply_label_update: negative level claim");
      }
      l.level_in[static_cast<std::size_t>(u.node)] = u.value;
      return;
    default:
      detail::throw_bad_channel(u.channel, "hybrid");
  }
}

inline void apply_label_update(HHLabeling& l, const LabelUpdate& u) {
  if (u.channel == LabelChannel::Side) {
    detail::check_bit(u.channel, u.value);
    l.side[static_cast<std::size_t>(u.node)] = static_cast<std::uint8_t>(u.value);
    return;
  }
  apply_label_update(l.hybrid, u);
}

// Applies every label update of `batch` to `labels`.  Node indices are
// assumed pre-validated (apply_mutation checks them against the graph).
template <typename Labels>
void apply_label_updates(Labels& labels, const MutationBatch& batch) {
  for (const LabelUpdate& u : batch.label_updates) apply_label_update(labels, u);
}

}  // namespace volcal
