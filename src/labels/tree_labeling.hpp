// Tree labelings and their derived structure (paper Sections 3-5).
//
// A tree labeling (Def. 3.1) gives every node three port-valued labels
// P/LC/RC ("parent", "left child", "right child"), each in [Δ] ∪ {⊥}.  The
// labels are *claims*: nothing forces them to describe a real tree, and the
// constructions' power comes from classifying nodes by whether their claims
// are mutually consistent (Def. 3.3).  The consistent nodes induce the
// directed pseudo-forest G_T (Obs. 3.7), on which every problem in the paper
// is built.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

// Input color χ_in ∈ {R, B} (Def. 3.1, "colored tree labeling").
enum class Color : std::uint8_t { Red, Blue };

inline char color_char(Color c) { return c == Color::Red ? 'R' : 'B'; }

struct TreeLabeling {
  // Port labels, kNoPort (=0) encodes ⊥.  parent[v] is P(v), etc.
  std::vector<Port> parent;
  std::vector<Port> left;
  std::vector<Port> right;

  explicit TreeLabeling(NodeIndex n = 0)
      : parent(n, kNoPort), left(n, kNoPort), right(n, kNoPort) {}

  NodeIndex node_count() const { return static_cast<NodeIndex>(parent.size()); }
};

struct ColoredTreeLabeling {
  TreeLabeling tree;
  std::vector<Color> color;  // χ_in

  explicit ColoredTreeLabeling(NodeIndex n = 0) : tree(n), color(n, Color::Red) {}
  NodeIndex node_count() const { return tree.node_count(); }
};

// Balanced tree labeling (Def. 4.1): tree labeling + lateral neighbor claims.
struct BalancedTreeLabeling {
  TreeLabeling tree;
  std::vector<Port> left_nbr;   // LN
  std::vector<Port> right_nbr;  // RN

  explicit BalancedTreeLabeling(NodeIndex n = 0)
      : tree(n), left_nbr(n, kNoPort), right_nbr(n, kNoPort) {}
  NodeIndex node_count() const { return tree.node_count(); }
};

// --- Label-pointer resolution (Notation 3.2) -------------------------------
//
// Labels are ports, but it is convenient to compose them as if they named
// nodes: resolve(g, v, P(v)) is "the node v claims as parent".

inline NodeIndex resolve(const Graph& g, NodeIndex v, Port p) {
  if (p == kNoPort || v == kNoNode) return kNoNode;
  if (p < 1 || p > g.degree(v)) return kNoNode;  // dangling claim
  return g.neighbor(v, p);
}

inline NodeIndex parent_of(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  return v == kNoNode ? kNoNode : resolve(g, v, l.parent[v]);
}
inline NodeIndex left_child_of(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  return v == kNoNode ? kNoNode : resolve(g, v, l.left[v]);
}
inline NodeIndex right_child_of(const Graph& g, const TreeLabeling& l, NodeIndex v) {
  return v == kNoNode ? kNoNode : resolve(g, v, l.right[v]);
}

// --- Node classification (Def. 3.3) ----------------------------------------

// v is internal iff both child claims point back at v, the children are
// distinct, and the parent claim does not collide with either child claim.
bool is_internal(const Graph& g, const TreeLabeling& l, NodeIndex v);

// v is a leaf iff v is not internal but its claimed parent is internal.
bool is_leaf(const Graph& g, const TreeLabeling& l, NodeIndex v);

// consistent = internal or leaf.
bool is_consistent(const Graph& g, const TreeLabeling& l, NodeIndex v);

enum class NodeKind : std::uint8_t { Internal, Leaf, Inconsistent };
NodeKind classify(const Graph& g, const TreeLabeling& l, NodeIndex v);

// --- The directed pseudo-forest G_T (Obs. 3.7) ------------------------------
//
// Vertices: consistent nodes.  Edges: internal u -> each child v with
// u = P(v).  Every node has out-degree 0 or 2 and in-degree 0 or 1, so every
// connected component contains at most one directed cycle.

struct PseudoForest {
  // Children in G_T: kNoNode if absent.  Only internal nodes have children.
  std::vector<NodeIndex> lc;
  std::vector<NodeIndex> rc;
  // Parent in G_T: the unique internal u with an edge u -> v, else kNoNode.
  std::vector<NodeIndex> up;
  std::vector<NodeKind> kind;

  bool in_forest(NodeIndex v) const { return kind[v] != NodeKind::Inconsistent; }
  NodeIndex node_count() const { return static_cast<NodeIndex>(kind.size()); }
};

PseudoForest build_pseudo_forest(const Graph& g, const TreeLabeling& l);

// Structural audit of Obs. 3.7: every node of G_T has out-degree 0 or 2 and
// in-degree 0 or 1.  Returns the first offending node, if any (used by
// property tests; always empty for forests produced by build_pseudo_forest).
std::optional<NodeIndex> pseudo_forest_violation(const PseudoForest& f);

// Nodes of G_T lying on a directed cycle (at most one cycle per component).
std::vector<char> on_cycle_mask(const PseudoForest& f);

// Number of G_T-descendants reachable from v (counting v); the n_v quantity
// used in the random-walk analysis of Prop. 3.10.  Nodes on cycles get the
// size of the whole reachable set.
std::vector<std::int64_t> reachable_counts(const PseudoForest& f);

}  // namespace volcal
