// Unique node identifiers (paper Section 2.1): every node carries a unique ID
// from [n^alpha] for a fixed alpha >= 1.  IDs are the names algorithms see;
// NodeIndex is the internal array index and is never revealed by the query
// model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

using NodeId = std::uint64_t;

class IdAssignment {
 public:
  IdAssignment() = default;
  explicit IdAssignment(std::vector<NodeId> ids);

  NodeId id_of(NodeIndex v) const { return ids_[v]; }
  NodeIndex node_count() const { return static_cast<NodeIndex>(ids_.size()); }

  // Sequential IDs 1..n (the canonical assignment used in the paper's
  // lower-bound constructions, e.g. Prop. 3.12 where the root has ID 1).
  static IdAssignment sequential(NodeIndex n);

  // A pseudorandom permutation of 1..ceil(n^alpha) restricted to n values;
  // deterministic in `seed`.
  static IdAssignment shuffled(NodeIndex n, std::uint64_t seed, double alpha = 1.0);

 private:
  std::vector<NodeId> ids_;
};

}  // namespace volcal
