// Unique node identifiers (paper Section 2.1): every node carries a unique ID
// from [n^alpha] for a fixed alpha >= 1.  IDs are the names algorithms see;
// NodeIndex is the internal array index and is never revealed by the query
// model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace volcal {

using NodeId = std::uint64_t;

class IdAssignment {
 public:
  IdAssignment() = default;
  explicit IdAssignment(std::vector<NodeId> ids);

  // Borrow an externally owned ID array (e.g. an mmap-ed snapshot section).
  // Same lifetime contract as Graph::adopt: the storage must outlive the
  // assignment and every copy of it.
  static IdAssignment adopt(const NodeId* ids, NodeIndex n) {
    IdAssignment a;
    a.adopted_ = ids;
    a.adopted_count_ = n;
    return a;
  }

  NodeId id_of(NodeIndex v) const { return adopted_ != nullptr ? adopted_[v] : ids_[v]; }
  NodeIndex node_count() const {
    return adopted_ != nullptr ? adopted_count_ : static_cast<NodeIndex>(ids_.size());
  }

  // The full assignment as a borrowed span (owned vector or adopted mapping);
  // what the snapshot writer serializes.
  std::span<const NodeId> span() const {
    if (adopted_ != nullptr) return {adopted_, static_cast<std::size_t>(adopted_count_)};
    return {ids_.data(), ids_.size()};
  }

  // Sequential IDs 1..n (the canonical assignment used in the paper's
  // lower-bound constructions, e.g. Prop. 3.12 where the root has ID 1).
  static IdAssignment sequential(NodeIndex n);

  // A pseudorandom permutation of 1..ceil(n^alpha) restricted to n values;
  // deterministic in `seed`.
  static IdAssignment shuffled(NodeIndex n, std::uint64_t seed, double alpha = 1.0);

 private:
  std::vector<NodeId> ids_;
  const NodeId* adopted_ = nullptr;
  NodeIndex adopted_count_ = 0;
};

}  // namespace volcal
