// Snapshot format + zero-copy GraphView pins (io/snapshot.hpp, volcal/io.hpp).
//
// The contract under test: an instance written as a binary snapshot and
// mmap-loaded back is *the same instance* as far as the engine can tell —
// bit-identical outputs and model costs for every registry family, on both
// execution backends, at any thread count.  Plus the format pins that make
// snapshots durable artifacts: corruption is rejected with a pinpointed
// error, the header layout is little-endian at fixed offsets, and sections
// stay 8-byte aligned so the mmap'd arrays are directly addressable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "labels/generators.hpp"
#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("volcal-snapshot-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os) << path;
}

void expect_load_error(const std::string& path, const std::string& needle) {
  try {
    (void)io::Snapshot::load(path);
    FAIL() << path << ": expected SnapshotError containing '" << needle << "'";
  } catch (const io::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

std::uint64_t u64_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + off, 8);
  return v;  // the test target is pinned little-endian by snapshot.cpp
}

// --- the tentpole contract: write -> mmap -> execute, bit-identical ---------

TEST_F(SnapshotTest, EveryFamilyRoundTripsBitIdenticallyOnBothBackends) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    SCOPED_TRACE(entry.name);
    const ErasedInstance inst = entry.make(300, 7);
    const std::string file = path(entry.name + ".vsnap");
    inst.save_snapshot(file);
    ASSERT_EQ(io::sniff_format(file), io::InstanceFormat::snapshot);
    const ErasedInstance loaded = io::load_instance(file);

    ASSERT_EQ(loaded.family(), entry.name);
    const NodeIndex n = inst.node_count();
    ASSERT_EQ(loaded.node_count(), n);

    // The loaded CSR is a different allocation (in fact a file mapping) —
    // the cache-identity key must see that — with identical bytes.
    const GraphView a = inst.graph();
    const GraphView b = loaded.graph();
    EXPECT_NE(a.storage_identity(), b.storage_identity());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    ASSERT_EQ(a.max_degree(), b.max_degree());
    EXPECT_EQ(std::memcmp(a.offsets_data(), b.offsets_data(),
                          sizeof(std::size_t) * static_cast<std::size_t>(n + 1)),
              0);
    if (a.edge_count() > 0) {
      EXPECT_EQ(std::memcmp(a.adjacency_data(), b.adjacency_data(),
                            sizeof(NodeIndex) * static_cast<std::size_t>(2 * a.edge_count())),
                0);
    }

    // Whole-graph sweeps: Basic and the family's planned backend, serial and
    // 8-thread, all bit-identical between the in-RAM and mmap instances.
    auto solve_a = [&](auto& exec) { return inst.solve(exec); };
    auto solve_b = [&](auto& exec) { return loaded.solve(exec); };
    const auto base = run_at_all_nodes(a, inst.ids(), solve_a);
    for (const int threads : {1, 8}) {
      for (const ExecBackend backend : {ExecBackend::Basic, ExecBackend::Batched}) {
        SCOPED_TRACE(std::to_string(threads) + " threads, backend " +
                     std::to_string(static_cast<int>(backend)));
        std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
        for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
        ParallelRunner runner(threads);
        runner.set_backend(backend);
        const auto run = runner.run_planned(b, loaded.ids(), starts, entry.plan, solve_b);
        EXPECT_EQ(base.output, run.output);
        EXPECT_EQ(base.volume, run.volume);
        EXPECT_EQ(base.distance, run.distance);
        EXPECT_EQ(base.queries, run.queries);
      }
    }

    // And the loaded instance's outputs satisfy its own verifier.
    const VerifyResult verdict = loaded.verify(base.output);
    EXPECT_TRUE(verdict.ok) << verdict.violations << " violations";
  }
}

// --- corruption rejection ----------------------------------------------------

TEST_F(SnapshotTest, RejectsCorruptHeadersAndPayloads) {
  const ErasedInstance inst = ProblemRegistry::global().find("leaf-coloring")->make(64, 3);
  const std::string file = path("victim.vsnap");
  inst.save_snapshot(file);
  const std::vector<std::uint8_t> good = read_file(file);
  ASSERT_GT(good.size(), 104u);

  {  // not even a full header
    std::vector<std::uint8_t> bad(good.begin(), good.begin() + 40);
    write_file(file, bad);
    expect_load_error(file, "truncated header");
  }
  {  // wrong magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0x20;
    write_file(file, bad);
    expect_load_error(file, "bad magic");
  }
  {  // unknown version
    std::vector<std::uint8_t> bad = good;
    bad[8] = 99;
    write_file(file, bad);
    expect_load_error(file, "unsupported version");
  }
  {  // truncated payload
    std::vector<std::uint8_t> bad(good.begin(), good.begin() + good.size() / 2);
    write_file(file, bad);
    expect_load_error(file, "out of bounds");
  }
  {  // single flipped payload byte
    std::vector<std::uint8_t> bad = good;
    bad[bad.size() - 1] ^= 1;
    write_file(file, bad);
    expect_load_error(file, "checksum mismatch");
  }
  {  // intact bytes still load (the victim file was not the problem)
    write_file(file, good);
    EXPECT_NO_THROW((void)io::Snapshot::load(file));
  }
}

// MappedFile::map must say *what kind* of wrong target it was handed — a
// directory, an empty file, and a sub-header file each get their own
// diagnostic instead of a generic mmap/size error.
TEST_F(SnapshotTest, MappedFileEdgeDiagnostics) {
  {  // directory target (opens fine on Linux; used to die inside mmap)
    expect_load_error(dir_.string(), "is a directory");
  }
  {  // zero-size file
    const std::string file = path("empty.vsnap");
    write_file(file, {});
    expect_load_error(file, "empty file");
  }
  {  // nonexistent path
    expect_load_error(path("does-not-exist.vsnap"), "cannot open");
  }
  {  // present but smaller than the 104-byte header
    const std::string file = path("stub.vsnap");
    write_file(file, std::vector<std::uint8_t>(16, 0x56));
    expect_load_error(file, "truncated header");
  }
}

// Each load mints its own storage identity: a persistent ViewCache bound to
// one mapping can never confuse it with a later mapping of the same (or any
// other) file, even if mmap recycles the address range.
TEST_F(SnapshotTest, EachLoadMintsADistinctStorageToken) {
  const ErasedInstance inst = ProblemRegistry::global().find("ball-4")->make(64, 5);
  const std::string file = path("token.vsnap");
  inst.save_snapshot(file);

  const io::Snapshot first = io::Snapshot::load(file);
  const io::Snapshot second = io::Snapshot::load(file);
  EXPECT_NE(first.graph().storage_identity(), kAnonymousStorage);
  EXPECT_NE(second.graph().storage_identity(), kAnonymousStorage);
  EXPECT_NE(first.graph().storage_identity(), second.graph().storage_identity());
  // One snapshot's views all share its token; copies share the mapping and
  // therefore the identity.
  EXPECT_EQ(first.graph().storage_identity(), first.graph().storage_identity());
  EXPECT_EQ(first.storage_token(), first.graph().storage_identity());
  const io::Snapshot copy = first;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.graph().storage_identity(), first.graph().storage_identity());
}

// --- byte-layout pins --------------------------------------------------------

TEST_F(SnapshotTest, HeaderLayoutIsLittleEndianAtFixedOffsets) {
  // depth-2 complete binary tree: n = 7, 6 edges, max degree 3.
  const LeafColoringInstance inst = make_complete_binary_tree(2, Color::Red, Color::Blue);
  const std::string file = path("layout.vsnap");
  io::write_snapshot(file, "leaf-coloring", inst);
  const std::vector<std::uint8_t> b = read_file(file);
  ASSERT_GE(b.size(), 104u);

  EXPECT_EQ(std::memcmp(b.data(), "VOLCSNP1", 8), 0);
  // version u32 little-endian at offset 8: 01 00 00 00.
  EXPECT_EQ(b[8], 1u);
  EXPECT_EQ(b[9], 0u);
  EXPECT_EQ(b[10], 0u);
  EXPECT_EQ(b[11], 0u);
  // header_bytes u32 at 12.
  EXPECT_EQ(b[12], 104u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(b.data() + 16)), "leaf-coloring");
  EXPECT_EQ(u64_at(b, 48), 7u);   // node_count
  EXPECT_EQ(u64_at(b, 56), 12u);  // adjacency_count = 2 * edges
  EXPECT_EQ(b[64], 3u);           // max_degree (low byte)
  const std::uint64_t payload_offset = u64_at(b, 72);
  const std::uint64_t payload_bytes = u64_at(b, 80);
  EXPECT_EQ(payload_offset % 8, 0u);
  EXPECT_EQ(payload_offset + payload_bytes, b.size());

  // Section table: every section 8-aligned inside the payload, and the CSR
  // sections carry the pinned element widths.
  const std::uint32_t section_count = b[68] | (std::uint32_t{b[69]} << 8);
  ASSERT_GE(section_count, 3u);
  bool saw_offsets = false, saw_adj = false, saw_ids = false;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t e = 104 + 32 * static_cast<std::size_t>(i);
    const std::string tag(reinterpret_cast<const char*>(b.data() + e));
    std::uint32_t elem_bytes = 0;
    std::memcpy(&elem_bytes, b.data() + e + 8, 4);
    const std::uint64_t count = u64_at(b, e + 16);
    const std::uint64_t offset = u64_at(b, e + 24);
    EXPECT_EQ(offset % 8, 0u) << tag;
    EXPECT_GE(offset, payload_offset) << tag;
    EXPECT_LE(offset + elem_bytes * count, b.size()) << tag;
    if (tag == "offsets") {
      saw_offsets = true;
      EXPECT_EQ(elem_bytes, 8u);
      EXPECT_EQ(count, 8u);  // n + 1
      // offsets[0] == 0 in payload bytes, little-endian.
      EXPECT_EQ(u64_at(b, offset), 0u);
      EXPECT_EQ(u64_at(b, offset + 7 * 8), 12u);  // offsets[n] == adjacency_count
    } else if (tag == "adj") {
      saw_adj = true;
      EXPECT_EQ(elem_bytes, 8u);
      EXPECT_EQ(count, 12u);
    } else if (tag == "ids") {
      saw_ids = true;
      EXPECT_EQ(elem_bytes, 8u);
      EXPECT_EQ(count, 7u);
    }
  }
  EXPECT_TRUE(saw_offsets);
  EXPECT_TRUE(saw_adj);
  EXPECT_TRUE(saw_ids);
}

// --- Graph::adopt / GraphView semantics --------------------------------------

TEST(GraphViewAdopt, AdoptedGraphDelegatesAndThrowsIdentically) {
  const LeafColoringInstance inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  const Graph& owned = inst.graph;
  const GraphView view = owned;  // implicit conversion
  const Graph adopted = Graph::adopt(view);

  ASSERT_EQ(adopted.node_count(), owned.node_count());
  EXPECT_EQ(adopted.edge_count(), owned.edge_count());
  EXPECT_EQ(adopted.max_degree(), owned.max_degree());
  for (NodeIndex v = 0; v < owned.node_count(); ++v) {
    ASSERT_EQ(adopted.degree(v), owned.degree(v));
    for (Port p = 1; p <= owned.degree(v); ++p) {
      EXPECT_EQ(adopted.neighbor(v, p), owned.neighbor(v, p));
    }
  }
  // An adopted Graph's view borrows the *original* storage: copying the
  // Graph must not re-point it (the adopt contract is pointer-stable).
  EXPECT_EQ(adopted.view().storage_identity(), view.storage_identity());
  const Graph copy = adopted;
  EXPECT_EQ(copy.view().storage_identity(), view.storage_identity());

  // Error wording is shared via the one CSR port-check helper, so engine
  // diagnostics are identical no matter which facade raised them.
  auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const std::out_of_range& e) {
      return e.what();
    }
    return "(did not throw)";
  };
  const std::string from_graph = message_of([&] { (void)owned.neighbor(0, 99); });
  const std::string from_view = message_of([&] { (void)view.neighbor(0, 99); });
  const std::string from_adopted = message_of([&] { (void)adopted.neighbor(0, 99); });
  EXPECT_NE(from_graph, "(did not throw)");
  EXPECT_EQ(from_graph, from_view);
  EXPECT_EQ(from_graph, from_adopted);
  EXPECT_EQ(message_of([&] { (void)view.neighbor(-1, 1); }),
            message_of([&] { (void)owned.neighbor(-1, 1); }));
}

// --- io consolidation: sniffing + the text path ------------------------------

TEST_F(SnapshotTest, LoadInstanceSniffsTextAndSnapshotForms) {
  const ErasedInstance inst = ProblemRegistry::global().find("leaf-coloring")->make(64, 5);

  const std::string text_file = path("inst.txt");
  ASSERT_TRUE(inst.has_text_format());
  io::save_instance(inst, text_file, io::InstanceFormat::text);
  EXPECT_EQ(io::sniff_format(text_file), io::InstanceFormat::text);

  const std::string snap_file = path("inst.vsnap");
  io::save_instance(inst, snap_file);  // snapshot is the default form
  EXPECT_EQ(io::sniff_format(snap_file), io::InstanceFormat::snapshot);
  EXPECT_TRUE(io::sniff_snapshot(snap_file));
  EXPECT_FALSE(io::sniff_snapshot(text_file));

  // Both forms rehydrate through the same entry point into equivalent
  // instances: identical whole-graph outputs.
  const ErasedInstance from_text = io::load_instance(text_file);
  const ErasedInstance from_snap = io::load_instance(snap_file);
  EXPECT_EQ(from_text.family(), inst.family());
  EXPECT_EQ(from_snap.family(), inst.family());
  const auto expect = run_at_all_nodes(inst.graph(), inst.ids(),
                                       [&](Execution& e) { return inst.solve(e); });
  const auto got_text = run_at_all_nodes(from_text.graph(), from_text.ids(),
                                         [&](Execution& e) { return from_text.solve(e); });
  const auto got_snap = run_at_all_nodes(from_snap.graph(), from_snap.ids(),
                                         [&](Execution& e) { return from_snap.solve(e); });
  EXPECT_EQ(expect.output, got_text.output);
  EXPECT_EQ(expect.output, got_snap.output);

  // Garbage is neither format.
  const std::string junk = path("junk.bin");
  write_file(junk, {0xde, 0xad, 0xbe, 0xef});
  EXPECT_THROW((void)io::sniff_format(junk), io::SnapshotError);

  // HH has no text writer — save_instance must say so, not write garbage.
  const ErasedInstance hh = ProblemRegistry::global().find("hh-2-3")->make(200, 5);
  EXPECT_FALSE(hh.has_text_format());
  EXPECT_THROW(io::save_instance(hh, path("hh.txt"), io::InstanceFormat::text),
               std::invalid_argument);
}

TEST_F(SnapshotTest, EraseInstanceRejectsUnknownFamilies) {
  LeafColoringInstance inst = make_complete_binary_tree(2, Color::Red, Color::Blue);
  EXPECT_THROW((void)erase_instance("no-such-family", std::move(inst)),
               std::invalid_argument);
}

}  // namespace
}  // namespace volcal
