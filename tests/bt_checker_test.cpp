// Per-condition coverage of the BalancedTree validity rules (Def. 4.3) and
// each clause of compatibility (Def. 4.2).
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

std::vector<BtOutput> valid_output(const BalancedTreeInstance& inst) {
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    InstanceSource<BalancedTreeLabeling> src(inst, exec);
    return balancedtree_solve(src);
  });
  return result.output;
}

// --- Def. 4.2 clause-by-clause ------------------------------------------------

TEST(BtCompatibility, TypePreservingViolation) {
  auto inst = make_balanced_instance(3);
  // Make an internal node's lateral neighbor a leaf by demoting the neighbor.
  // Node 1 (depth 1) has RN = node 2; drop node 2's children claims.
  inst.labels.tree.left[2] = kNoPort;
  inst.labels.tree.right[2] = kNoPort;
  EXPECT_FALSE(bt_compatible(inst.graph, inst.labels, 1));
}

TEST(BtCompatibility, AgreementViolation) {
  auto inst = make_balanced_instance(3);
  const NodeIndex v = 1;
  const NodeIndex rn = resolve(inst.graph, v, inst.labels.right_nbr[v]);
  ASSERT_NE(rn, kNoNode);
  inst.labels.left_nbr[rn] = kNoPort;  // RN(v) no longer points back
  EXPECT_FALSE(bt_compatible(inst.graph, inst.labels, v));
}

TEST(BtCompatibility, SiblingsViolation) {
  auto inst = make_balanced_instance(3);
  const NodeIndex v = 1;
  const NodeIndex lc = left_child_of(inst.graph, inst.labels.tree, v);
  ASSERT_NE(lc, kNoNode);
  inst.labels.right_nbr[lc] = kNoPort;  // LC(v) forgets its sibling
  EXPECT_FALSE(bt_compatible(inst.graph, inst.labels, v));
}

TEST(BtCompatibility, PersistenceViolation) {
  auto inst = make_balanced_instance(3);
  const NodeIndex v = 1;
  const NodeIndex rc = right_child_of(inst.graph, inst.labels.tree, v);
  ASSERT_NE(rc, kNoNode);
  // RC(v)'s lateral chain no longer continues into RN(v)'s children.
  inst.labels.right_nbr[rc] = kNoPort;
  EXPECT_FALSE(bt_compatible(inst.graph, inst.labels, v));
  // The query-side evaluation agrees.
  Execution exec(inst.graph, inst.ids, v);
  InstanceSource<BalancedTreeLabeling> src(inst, exec);
  EXPECT_FALSE(query_bt_compatible(src, v));
}

TEST(BtCompatibility, LeafLateralToInternalViolation) {
  auto inst = make_balanced_instance(2);
  // Point a leaf's RN at an internal node via a bogus port: leaves' laterals
  // must be leaves.
  const NodeIndex leaf = inst.node_count() - 1;
  inst.labels.right_nbr[leaf] = inst.labels.tree.parent[leaf];
  EXPECT_FALSE(bt_compatible(inst.graph, inst.labels, leaf));
}

TEST(BtCompatibility, RootWithoutLateralsCompatible) {
  auto inst = make_balanced_instance(2);
  EXPECT_TRUE(bt_compatible(inst.graph, inst.labels, 0));
}

// --- Def. 4.3 conditions --------------------------------------------------------

TEST(BtValidity, Condition1IncompatibleMustDeclareU) {
  auto inst = make_unbalanced_instance(4, 2, 5);
  auto out = valid_output(inst);
  BalancedTreeProblem problem;
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  // Find an incompatible node; its only valid output is (U, ⊥).
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (is_consistent(inst.graph, inst.labels.tree, v) &&
        !bt_compatible(inst.graph, inst.labels, v)) {
      EXPECT_EQ(out[v], (BtOutput{Balance::Unbalanced, kNoPort}));
      auto mutated = out;
      mutated[v] = {Balance::Balanced, inst.labels.tree.parent[v]};
      EXPECT_FALSE(problem.valid_at(inst, mutated, v));
      mutated[v] = {Balance::Unbalanced, 1};
      EXPECT_FALSE(problem.valid_at(inst, mutated, v));
      return;
    }
  }
  FAIL() << "no incompatible node found";
}

TEST(BtValidity, Condition2LeafMustPassUp) {
  auto inst = make_balanced_instance(3);
  auto out = valid_output(inst);
  BalancedTreeProblem problem;
  const NodeIndex leaf = inst.node_count() - 1;
  auto mutated = out;
  mutated[leaf] = {Balance::Unbalanced, kNoPort};
  EXPECT_FALSE(problem.valid_at(inst, mutated, leaf));
}

TEST(BtValidity, Condition3bPointsAtUnbalancedChild) {
  auto inst = make_unbalanced_instance(4, 2, 7);
  auto out = valid_output(inst);
  BalancedTreeProblem problem;
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  // The root is compatible but has an unbalanced descendant: its output must
  // name the port of a child that declared Unbalanced.
  ASSERT_EQ(out[0].beta, Balance::Unbalanced);
  const NodeIndex named = resolve(inst.graph, 0, out[0].p);
  ASSERT_NE(named, kNoNode);
  EXPECT_EQ(out[named].beta, Balance::Unbalanced);
  // Pointing at the *other* (balanced) child is invalid.
  const NodeIndex lc = left_child_of(inst.graph, inst.labels.tree, 0);
  const NodeIndex rc = right_child_of(inst.graph, inst.labels.tree, 0);
  const NodeIndex other = named == lc ? rc : lc;
  if (out[other].beta == Balance::Balanced) {
    auto mutated = out;
    mutated[0].p = inst.graph.port_to(0, other);
    EXPECT_FALSE(problem.valid_at(inst, mutated, 0));
  }
}

TEST(BtValidity, InconsistentNodesUnconstrained) {
  auto inst = make_balanced_instance(3);
  // Corrupt one node into inconsistency; any output there is accepted.
  inst.labels.tree.parent[5] = inst.labels.tree.left[5];
  ASSERT_FALSE(is_consistent(inst.graph, inst.labels.tree, 5));
  BalancedTreeProblem problem;
  std::vector<BtOutput> out(inst.node_count(), BtOutput{Balance::Unbalanced, kNoPort});
  EXPECT_TRUE(problem.valid_at(inst, out, 5));
  out[5] = {Balance::Balanced, 3};
  EXPECT_TRUE(problem.valid_at(inst, out, 5));
}

// Lemma 4.6 executable: an unbalanced subtree has an incompatible node within
// nearest-leaf distance.
TEST(BtValidity, Lemma46DefectWithinLeafDepth) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto inst = make_unbalanced_instance(5, 3, seed);
    auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
    // Nearest-leaf depth from the root.
    std::int64_t leaf_depth = -1;
    {
      std::vector<std::pair<NodeIndex, std::int64_t>> frontier{{0, 0}};
      std::size_t head = 0;
      while (head < frontier.size() && leaf_depth < 0) {
        auto [v, d] = frontier[head++];
        for (NodeIndex c : {f.lc[v], f.rc[v]}) {
          if (c == kNoNode) continue;
          if (f.kind[c] == NodeKind::Leaf) leaf_depth = d + 1;
          frontier.emplace_back(c, d + 1);
        }
      }
    }
    ASSERT_GT(leaf_depth, 0);
    // Some incompatible node within that depth from the root.
    bool found = false;
    auto dist = bfs_distances(inst.graph, 0);
    for (NodeIndex v = 0; v < inst.node_count() && !found; ++v) {
      if (is_consistent(inst.graph, inst.labels.tree, v) &&
          !bt_compatible(inst.graph, inst.labels, v)) {
        found = dist[v] <= leaf_depth;
      }
    }
    EXPECT_TRUE(found) << "seed " << seed;
  }
}

}  // namespace
}  // namespace volcal
