#include "lcl/problems/hybrid_thc.hpp"

#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/hh_thc.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

using HybFree = FreeSource<HybridLabeling>;
using HybSrc = InstanceSource<HybridLabeling>;
using HHFree = FreeSource<HHLabeling>;
using HHSrc = InstanceSource<HHLabeling>;

std::vector<HybridOutput> hybrid_outputs_distance(const HybridInstance& inst,
                                                  const HybridConfig& cfg) {
  HybFree src(inst);
  std::vector<HybridOutput> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    src.set_start(v);
    out[v] = hybrid_solve_distance(src, cfg);
  }
  return out;
}

std::vector<HybridOutput> hybrid_outputs_volume(const HybridInstance& inst,
                                                const HybridConfig& cfg) {
  HybFree src(inst);
  HybridVolumeSolver<HybFree> solver(src, cfg);
  std::vector<HybridOutput> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) out[v] = solver.solve_at(v);
  return out;
}

// ---------------------------------------------------------------------------
// Hybrid-THC validity (Thm. 6.3 upper bounds)
// ---------------------------------------------------------------------------

struct HybridParam {
  int k;
  NodeIndex backbone;
  int bt_depth;
  std::uint64_t seed;
};

class HybridDistance : public ::testing::TestWithParam<HybridParam> {};

TEST_P(HybridDistance, OutputsValid) {
  const auto [k, b, d, seed] = GetParam();
  auto inst = make_hybrid_instance(k, b, d, seed);
  auto cfg = HybridConfig::make(k, inst.node_count());
  auto out = hybrid_outputs_distance(inst, cfg);
  HybridTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad << " of "
                          << inst.node_count();
}

INSTANTIATE_TEST_SUITE_P(Shapes, HybridDistance,
                         ::testing::Values(HybridParam{2, 4, 3, 1}, HybridParam{2, 8, 2, 2},
                                           HybridParam{3, 3, 3, 3}, HybridParam{3, 5, 2, 4},
                                           HybridParam{4, 2, 2, 5}));

class HybridVolume : public ::testing::TestWithParam<HybridParam> {};

TEST_P(HybridVolume, OutputsValid) {
  const auto [k, b, d, seed] = GetParam();
  auto inst = make_hybrid_instance(k, b, d, seed);
  RandomTape tape(inst.ids, seed * 77 + 1);
  auto cfg = HybridConfig::make(k, inst.node_count(), /*waypoints=*/true, &tape);
  auto out = hybrid_outputs_volume(inst, cfg);
  HybridTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad << " of "
                          << inst.node_count();
}

INSTANTIATE_TEST_SUITE_P(Shapes, HybridVolume,
                         ::testing::Values(HybridParam{2, 4, 3, 1}, HybridParam{2, 8, 2, 2},
                                           HybridParam{3, 3, 3, 3}, HybridParam{3, 5, 2, 4},
                                           HybridParam{2, 16, 3, 5}));

TEST(HybridSemantics, DeepTopWithSparseWaypointsStaysValid) {
  // Mirror of the HthcSolve regression: a deep level-2 backbone with p < 1 —
  // the bidirectional scan must find certifying way-points in both
  // directions.
  auto inst = make_hybrid_instance(2, 900, 2, 11);
  RandomTape tape(inst.ids, 17);
  auto cfg = HybridConfig::make(2, inst.node_count(), true, &tape);
  ASSERT_LT(cfg.thc.waypoint_p(inst.node_count()), 1.0);
  ASSERT_GT(NodeIndex{900}, cfg.thc.window);
  auto out = hybrid_outputs_volume(inst, cfg);
  HybridTHCProblem problem(inst, 2);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
}

TEST(HybridSemantics, DistanceSolverSolvesEveryBtComponent) {
  auto inst = make_hybrid_instance(2, 4, 3, 9);
  auto cfg = HybridConfig::make(2, inst.node_count());
  auto out = hybrid_outputs_distance(inst, cfg);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (inst.labels.level_in[v] == 1) {
      EXPECT_TRUE(out[v].is_bt) << v;
    } else {
      EXPECT_EQ(out[v].thc, ThcColor::X) << v;  // X-cascade above level 1
    }
  }
}

TEST(HybridSemantics, DistanceCostLogarithmic) {
  for (const HybridParam p : {HybridParam{2, 4, 4, 1}, HybridParam{3, 3, 3, 2}}) {
    auto inst = make_hybrid_instance(p.k, p.backbone, p.bt_depth, p.seed);
    auto cfg = HybridConfig::make(p.k, inst.node_count());
    std::int64_t max_dist = 0;
    for (NodeIndex v = 0; v < inst.node_count();
         v += std::max<NodeIndex>(1, inst.node_count() / 60)) {
      Execution exec(inst.graph, inst.ids, v);
      HybSrc src(inst, exec);
      hybrid_solve_distance(src, cfg);
      max_dist = std::max(max_dist, exec.distance());
    }
    const double logn = std::log2(static_cast<double>(inst.node_count()));
    EXPECT_LE(max_dist, static_cast<std::int64_t>(4 * logn) + 8);
  }
}

TEST(HybridSemantics, HeavyComponentsDeclineUnanimously) {
  // Force heaviness by shrinking the lightness threshold below the component
  // size: every level-1 node must decline, every level-2 node must not be X.
  auto inst = make_hybrid_instance(2, 4, 4, 3);
  RandomTape tape(inst.ids, 5);
  auto cfg = HybridConfig::make(2, inst.node_count(), true, &tape);
  cfg.bt_limit = 3;  // components have 31 nodes: all heavy now
  auto out = hybrid_outputs_volume(inst, cfg);
  HybridTHCProblem problem(inst, 2);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (inst.labels.level_in[v] == 1) {
      EXPECT_EQ(out[v], HybridOutput::symbol(ThcColor::D)) << v;
    } else {
      EXPECT_NE(out[v].thc, ThcColor::X) << v;
    }
  }
}

TEST(HybridChecker, RejectsExemptOverDeclinedComponent) {
  auto inst = make_hybrid_instance(2, 4, 2, 7);
  auto cfg = HybridConfig::make(2, inst.node_count());
  auto out = hybrid_outputs_distance(inst, cfg);
  HybridTHCProblem problem(inst, 2);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  // Decline one whole BT component but leave its host exempt: the host's
  // level-2 X now lacks its certificate.
  Hierarchy h(inst.graph, inst.labels.bal.tree, 3, inst.labels.level_in);
  NodeIndex host = kNoNode;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (inst.labels.level_in[v] == 2 && h.down(v) != kNoNode) {
      host = v;
      break;
    }
  }
  ASSERT_NE(host, kNoNode);
  out[h.down(host)] = HybridOutput::symbol(ThcColor::D);
  EXPECT_FALSE(problem.valid_at(inst, out, host));
}

TEST(HybridChecker, RejectsMixedBtAndDeclineInComponent) {
  auto inst = make_hybrid_instance(2, 4, 2, 8);
  auto cfg = HybridConfig::make(2, inst.node_count());
  auto out = hybrid_outputs_distance(inst, cfg);
  HybridTHCProblem problem(inst, 2);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  // Flip a single interior level-1 node to D: its neighbors still hold bt
  // outputs, violating both branches of the level-1 disjunction.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (inst.labels.level_in[v] == 1 &&
        is_internal(inst.graph, inst.labels.bal.tree, v)) {
      out[v] = HybridOutput::symbol(ThcColor::D);
      EXPECT_FALSE(verify_all(problem, inst, out).ok);
      return;
    }
  }
  FAIL();
}

// ---------------------------------------------------------------------------
// HH-THC (Thm. 6.5)
// ---------------------------------------------------------------------------

struct HHParam {
  int k;
  int l;
  NodeIndex n_half;
  std::uint64_t seed;
};

class HHSolve : public ::testing::TestWithParam<HHParam> {};

TEST_P(HHSolve, DistanceOutputsValid) {
  const auto [k, l, n_half, seed] = GetParam();
  auto inst = make_hh_instance(k, l, n_half, seed);
  auto cfg = HHConfig::make(k, l, inst.node_count());
  HHFree src(inst);
  std::vector<HybridOutput> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    src.set_start(v);
    out[v] = hh_solve_distance(src, cfg);
  }
  HHTHCProblem problem(inst, k, l);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
}

TEST_P(HHSolve, VolumeOutputsValid) {
  const auto [k, l, n_half, seed] = GetParam();
  auto inst = make_hh_instance(k, l, n_half, seed);
  RandomTape tape(inst.ids, seed + 9);
  auto cfg = HHConfig::make(k, l, inst.node_count(), /*waypoints=*/true, &tape);
  HHFree src(inst);
  // Side-0 memoized solver shared across starts; hybrid side solved per node
  // through a shared volume solver.
  HthcSolver<HHFree> hier_solver(src, cfg.hier);
  HybridVolumeSolver<HHFree> hyb_solver(src, cfg.hybrid);
  std::vector<HybridOutput> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    out[v] = inst.labels.side[v] == 0 ? HybridOutput::symbol(hier_solver.solve_at(v))
                                      : hyb_solver.solve_at(v);
  }
  HHTHCProblem problem(inst, k, l);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
}

INSTANTIATE_TEST_SUITE_P(Shapes, HHSolve,
                         ::testing::Values(HHParam{2, 2, 200, 1}, HHParam{2, 3, 300, 2},
                                           HHParam{2, 4, 400, 3}, HHParam{3, 3, 500, 4},
                                           HHParam{3, 4, 300, 5}));

TEST(HHSemantics, SideDispatchMatchesSingleProblemSolvers) {
  auto inst = make_hh_instance(2, 3, 250, 6);
  auto cfg = HHConfig::make(2, 3, inst.node_count());
  HHFree src(inst);
  for (NodeIndex v = 0; v < inst.node_count(); v += 11) {
    src.set_start(v);
    auto out = hh_solve_distance(src, cfg);
    if (inst.labels.side[v] == 0) {
      EXPECT_FALSE(out.is_bt);
    }
  }
}

}  // namespace
}  // namespace volcal
