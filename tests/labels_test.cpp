#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "labels/generators.hpp"
#include "labels/hierarchy.hpp"
#include "labels/ids.hpp"
#include "labels/tree_labeling.hpp"

namespace volcal {
namespace {

// ---------------------------------------------------------------------------
// IDs
// ---------------------------------------------------------------------------

TEST(Ids, SequentialAssignsOneBased) {
  auto ids = IdAssignment::sequential(4);
  for (NodeIndex v = 0; v < 4; ++v) EXPECT_EQ(ids.id_of(v), static_cast<NodeId>(v) + 1);
}

TEST(Ids, ShuffledUniqueAndDeterministic) {
  auto a = IdAssignment::shuffled(200, 7);
  auto b = IdAssignment::shuffled(200, 7);
  auto c = IdAssignment::shuffled(200, 8);
  std::set<NodeId> seen;
  bool differs = false;
  for (NodeIndex v = 0; v < 200; ++v) {
    EXPECT_TRUE(seen.insert(a.id_of(v)).second);
    EXPECT_EQ(a.id_of(v), b.id_of(v));
    differs |= a.id_of(v) != c.id_of(v);
  }
  EXPECT_TRUE(differs);
}

TEST(Ids, DuplicateRejected) {
  EXPECT_THROW(IdAssignment({1, 2, 1}), std::invalid_argument);
}

TEST(Ids, AlphaGrowsIdSpace) {
  auto ids = IdAssignment::shuffled(100, 3, 2.0);
  bool above_n = false;
  for (NodeIndex v = 0; v < 100; ++v) above_n |= ids.id_of(v) > 100;
  EXPECT_TRUE(above_n);  // with space n^2, whp some ID exceeds n
}

// ---------------------------------------------------------------------------
// Classification (Def. 3.3) on the canonical complete tree
// ---------------------------------------------------------------------------

class CompleteTreeClassify : public ::testing::TestWithParam<int> {};

TEST_P(CompleteTreeClassify, InternalAndLeafPartitionMatchesDepth) {
  const int depth = GetParam();
  auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
  const NodeIndex n = inst.node_count();
  const NodeIndex first_leaf = (NodeIndex{1} << depth) - 1;
  for (NodeIndex v = 0; v < n; ++v) {
    if (v < first_leaf) {
      EXPECT_TRUE(is_internal(inst.graph, inst.labels.tree, v)) << v;
      EXPECT_FALSE(is_leaf(inst.graph, inst.labels.tree, v)) << v;
    } else {
      EXPECT_TRUE(is_leaf(inst.graph, inst.labels.tree, v)) << v;
    }
    EXPECT_TRUE(is_consistent(inst.graph, inst.labels.tree, v)) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, CompleteTreeClassify, ::testing::Values(1, 2, 3, 5, 8));

TEST(Classify, RootWithoutParentIsInternal) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Red);
  EXPECT_EQ(classify(inst.graph, inst.labels.tree, 0), NodeKind::Internal);
}

TEST(Classify, DanglingChildClaimNotInternal) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Red);
  // Claiming a left child on a port beyond the degree dangles.
  inst.labels.tree.left[0] = 7;
  EXPECT_FALSE(is_internal(inst.graph, inst.labels.tree, 0));
}

TEST(Classify, ChildNotAcknowledgingParentBreaksInternal) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Red);
  inst.labels.tree.parent[1] = kNoPort;  // node 1 = left child of root
  EXPECT_FALSE(is_internal(inst.graph, inst.labels.tree, 0));
  // Node 1 still claims children that acknowledge it: stays internal.
  EXPECT_TRUE(is_internal(inst.graph, inst.labels.tree, 1));
}

TEST(Classify, EqualChildPortsNotInternal) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Red);
  inst.labels.tree.right[0] = inst.labels.tree.left[0];
  EXPECT_FALSE(is_internal(inst.graph, inst.labels.tree, 0));
}

TEST(Classify, ParentCollidingWithChildPortNotInternal) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Red);
  inst.labels.tree.parent[1] = inst.labels.tree.left[1];  // P = LC at node 1
  EXPECT_FALSE(is_internal(inst.graph, inst.labels.tree, 1));
}

TEST(Classify, LeafRequiresInternalParent) {
  auto inst = make_complete_binary_tree(1, Color::Red, Color::Red);
  // Nodes 1, 2 are leaves of the depth-1 tree.  Breaking the root demotes
  // them to inconsistent: a leaf needs an *internal* parent.
  EXPECT_EQ(classify(inst.graph, inst.labels.tree, 1), NodeKind::Leaf);
  inst.labels.tree.left[0] = kNoPort;
  EXPECT_FALSE(is_internal(inst.graph, inst.labels.tree, 0));
  EXPECT_FALSE(is_leaf(inst.graph, inst.labels.tree, 1));
  EXPECT_EQ(classify(inst.graph, inst.labels.tree, 1), NodeKind::Inconsistent);
}

// ---------------------------------------------------------------------------
// Observation 3.7 as a property test: the pseudo-forest invariants hold for
// arbitrary (noise) labelings.
// ---------------------------------------------------------------------------

class PseudoForestProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PseudoForestProperty, DegreesAndCycles) {
  auto inst = make_noise_instance(300, 4, GetParam());
  auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
  EXPECT_FALSE(pseudo_forest_violation(f).has_value());
  // Each component has at most one cycle: every on-cycle node has exactly one
  // on-cycle child (a cycle is a simple directed loop).
  auto cyc = on_cycle_mask(f);
  for (NodeIndex v = 0; v < f.node_count(); ++v) {
    if (!cyc[v]) continue;
    int cycle_children = 0;
    for (NodeIndex c : {f.lc[v], f.rc[v]}) {
      if (c != kNoNode && cyc[c]) ++cycle_children;
    }
    EXPECT_EQ(cycle_children, 1) << "cycle node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PseudoForestProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(PseudoForest, CompleteTreeHasNoCycle) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
  auto cyc = on_cycle_mask(f);
  for (NodeIndex v = 0; v < f.node_count(); ++v) EXPECT_FALSE(cyc[v]);
  auto counts = reachable_counts(f);
  EXPECT_EQ(counts[0], inst.node_count());  // root reaches everything
}

TEST(PseudoForest, CyclePseudotreeHasExactlyOneCycle) {
  auto inst = make_cycle_pseudotree(6, 2, 99);
  auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
  EXPECT_FALSE(pseudo_forest_violation(f).has_value());
  auto cyc = on_cycle_mask(f);
  std::int64_t on = 0;
  for (NodeIndex v = 0; v < f.node_count(); ++v) on += cyc[v];
  EXPECT_EQ(on, 6);  // exactly the cycle nodes
  // All cycle nodes are internal (they have two acknowledged children).
  for (NodeIndex v = 0; v < 6; ++v) EXPECT_EQ(f.kind[v], NodeKind::Internal);
}

TEST(PseudoForest, ReachableCountsHalveSomewhere) {
  // Lemma 3.8 machinery: on a full binary tree, each internal node has a
  // child whose reachable count is at most half its own.
  auto inst = make_random_full_binary_tree(401, 5);
  auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
  auto counts = reachable_counts(f);
  for (NodeIndex v = 0; v < f.node_count(); ++v) {
    if (f.kind[v] != NodeKind::Internal) continue;
    const std::int64_t nv = counts[v];
    const std::int64_t nl = counts[f.lc[v]];
    const std::int64_t nr = counts[f.rc[v]];
    EXPECT_EQ(nv, 1 + nl + nr);
    EXPECT_TRUE(nl <= nv / 2 || nr <= nv / 2);
  }
}

// ---------------------------------------------------------------------------
// Hierarchy (Defs. 5.1-5.2, Obs. 5.4)
// ---------------------------------------------------------------------------

struct HierParam {
  int k;
  NodeIndex backbone;
};

class HierarchyStructure : public ::testing::TestWithParam<HierParam> {};

TEST_P(HierarchyStructure, LevelsAndBackbones) {
  const auto [k, b] = GetParam();
  auto inst = make_hierarchical_instance(k, b, 17);
  Hierarchy h(inst.graph, inst.labels.tree, k + 1);
  // Every node is in the hierarchy, levels within [1, k].
  std::vector<std::int64_t> level_count(k + 2, 0);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    ASSERT_TRUE(h.in_hierarchy(v)) << v;
    ASSERT_GE(h.level(v), 1);
    ASSERT_LE(h.level(v), k);
    ++level_count[h.level(v)];
  }
  // Exactly b nodes at level k (the single top backbone).
  EXPECT_EQ(level_count[k], b);
  // Backbones are paths of length exactly b with a root at the head and a
  // leaf at the tail.
  for (const auto& bb : h.backbones()) {
    EXPECT_FALSE(bb.is_cycle);
    EXPECT_EQ(static_cast<NodeIndex>(bb.nodes.size()), b);
    EXPECT_TRUE(h.is_level_root(bb.nodes.front()));
    EXPECT_TRUE(h.is_level_leaf(bb.nodes.back()));
    for (std::size_t i = 0; i + 1 < bb.nodes.size(); ++i) {
      EXPECT_EQ(h.backbone_next(bb.nodes[i]), bb.nodes[i + 1]);
      EXPECT_EQ(h.backbone_prev(bb.nodes[i + 1]), bb.nodes[i]);
      EXPECT_EQ(h.level(bb.nodes[i]), bb.level);
    }
    // Obs. 5.4: level-1 backbone nodes have no RC link; higher levels hang a
    // level-(ℓ-1) root below every node.
    for (NodeIndex v : bb.nodes) {
      if (bb.level == 1) {
        EXPECT_EQ(h.down(v), kNoNode);
      } else {
        const NodeIndex d = h.down(v);
        ASSERT_NE(d, kNoNode);
        EXPECT_EQ(h.level(d), bb.level - 1);
        EXPECT_TRUE(h.is_level_root(d));
      }
    }
  }
  // Subtree weights: the top backbone's weight is the whole instance.
  const auto top = h.backbone_of(0);
  bool found_full = false;
  for (std::size_t i = 0; i < h.backbones().size(); ++i) {
    if (h.backbones()[i].level == k) {
      EXPECT_EQ(h.subtree_weight(static_cast<std::int64_t>(i)), inst.node_count());
      found_full = true;
    }
  }
  EXPECT_TRUE(found_full);
  (void)top;
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierarchyStructure,
                         ::testing::Values(HierParam{1, 12}, HierParam{2, 6},
                                           HierParam{2, 9}, HierParam{3, 4},
                                           HierParam{4, 3}));

TEST(Hierarchy, LensVariantSizes) {
  auto inst = make_hierarchical_instance_lens({3, 5, 2}, 4);
  // size = 2 * (1 + 5 * (1 + 3)) = 42
  EXPECT_EQ(inst.node_count(), 42);
  Hierarchy h(inst.graph, inst.labels.tree, 4);
  std::int64_t top = 0;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) top += h.level(v) == 3;
  EXPECT_EQ(top, 2);
}

TEST(Hierarchy, InputLevelOverride) {
  auto inst = make_hierarchical_instance(2, 4, 3);
  std::vector<int> levels(inst.node_count(), 2);
  Hierarchy h(inst.graph, inst.labels.tree, 3, levels);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) EXPECT_EQ(h.level(v), 2);
}

TEST(Hierarchy, LevelCapOnRcCycle) {
  // A triangle whose RC links cycle 0 -> 1 -> 2 -> 0: the RC chain never
  // bottoms out, so levels are capped.  (A 2-cycle is impossible: P and RC
  // would have to share the one connecting edge, a port collision.)
  Graph::Builder b(3);
  b.add_edge_with_ports(0, 1, 1, 2);  // port 1 at i = successor, port 2 = predecessor
  b.add_edge_with_ports(1, 2, 1, 2);
  b.add_edge_with_ports(2, 0, 1, 2);
  Graph g = std::move(b).build();
  TreeLabeling l(3);
  for (NodeIndex i = 0; i < 3; ++i) {
    l.right[i] = 1;   // RC = successor
    l.parent[i] = 2;  // P = predecessor
  }
  Hierarchy h(g, l, 3);
  EXPECT_EQ(h.level(0), 3);  // capped
  EXPECT_EQ(h.level(1), 3);
  EXPECT_EQ(h.level(2), 3);
}

TEST(Hierarchy, BackboneCycleDetected) {
  // LC-linked cycle at a single level.
  const int len = 5;
  Graph::Builder b(len);
  for (int i = 0; i < len; ++i) b.add_edge_with_ports(i, (i + 1) % len, 2, 1);
  Graph g = std::move(b).build();
  TreeLabeling l(len);
  for (int i = 0; i < len; ++i) {
    l.left[i] = 2;
    l.parent[i] = 1;
  }
  Hierarchy h(g, l, 3);
  ASSERT_EQ(h.backbones().size(), 1u);
  EXPECT_TRUE(h.backbones()[0].is_cycle);
  EXPECT_EQ(h.backbones()[0].nodes.size(), static_cast<std::size_t>(len));
}

// ---------------------------------------------------------------------------
// Generator sanity
// ---------------------------------------------------------------------------

TEST(Generators, CompleteTreeShape) {
  auto inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  EXPECT_EQ(inst.node_count(), 15);
  EXPECT_EQ(inst.graph.max_degree(), 3);
  EXPECT_EQ(inst.ids.id_of(0), 1u);  // heap-order IDs, root = 1
}

TEST(Generators, RandomFullTreeIsFullBinary) {
  auto inst = make_random_full_binary_tree(201, 11);
  const auto& t = inst.labels.tree;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    const bool has_l = t.left[v] != kNoPort;
    const bool has_r = t.right[v] != kNoPort;
    EXPECT_EQ(has_l, has_r) << v;
  }
  EXPECT_EQ(inst.node_count() % 2, 1);
}

TEST(Generators, CaterpillarEveryInternalNearLeaf) {
  auto inst = make_caterpillar(20, 2);
  auto f = build_pseudo_forest(inst.graph, inst.labels.tree);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (f.kind[v] != NodeKind::Internal) continue;
    bool leaf_child = false;
    for (NodeIndex c : {f.lc[v], f.rc[v]}) {
      leaf_child |= c != kNoNode && f.kind[c] == NodeKind::Leaf;
    }
    EXPECT_TRUE(leaf_child) << v;
  }
}

TEST(Generators, HybridInstanceLevels) {
  auto inst = make_hybrid_instance(3, 3, 2, 21);
  // Levels 2..3 on the backbone, 1 in the BalancedTree components.
  std::set<int> seen;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) seen.insert(inst.labels.level_in[v]);
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3}));
  // Each level-2 node hangs a BalancedTree root below.
  Hierarchy h(inst.graph, inst.labels.bal.tree, 4, inst.labels.level_in);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (inst.labels.level_in[v] == 2) {
      const NodeIndex d = h.down(v);
      ASSERT_NE(d, kNoNode);
      EXPECT_EQ(inst.labels.level_in[d], 1);
      EXPECT_TRUE(is_internal(inst.graph, inst.labels.bal.tree, d));
    }
  }
}

TEST(Generators, HHInstanceSidesDisjoint) {
  auto inst = make_hh_instance(2, 3, 300, 5);
  // Sides must not be adjacent.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    for (NodeIndex w : inst.graph.neighbors(v)) {
      EXPECT_EQ(inst.labels.side[v], inst.labels.side[w]);
    }
  }
}

TEST(Generators, TwoTreeGadgetShape) {
  auto gadget = make_two_tree_gadget(3, 1);
  EXPECT_EQ(gadget.u_leaves.size(), 8u);
  EXPECT_EQ(gadget.v_leaves.size(), 8u);
  EXPECT_TRUE(gadget.graph.adjacent(gadget.root_u, gadget.root_v));
}

TEST(Generators, RingShape) {
  auto ring = make_ring(10, 3);
  for (NodeIndex v = 0; v < 10; ++v) {
    EXPECT_EQ(ring.graph.degree(v), 2);
    EXPECT_EQ(ring.graph.neighbor(v, 1), (v + 1) % 10);  // successor
    EXPECT_EQ(ring.graph.neighbor(v, 2), (v + 9) % 10);  // predecessor
  }
}

}  // namespace
}  // namespace volcal
