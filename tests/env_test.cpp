// Strict environment parsing (util/env.hpp): whole-string integer parses,
// one-time-per-variable warnings on misconfiguration, overflow-safe MiB →
// bytes conversion, and the strict behavior of the VOLCAL_THREADS /
// VOLCAL_BACKEND consumers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "plan/probe_plan.hpp"
#include "util/env.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env::reset_warnings_for_testing();
    ::unsetenv("VOLCAL_TEST_KNOB");
  }
  void TearDown() override {
    ::unsetenv("VOLCAL_TEST_KNOB");
    env::reset_warnings_for_testing();
  }
};

TEST_F(EnvTest, UnsetIsSilentlyAbsent) {
  EXPECT_EQ(env::positive_int("VOLCAL_TEST_KNOB", 100, "default"), std::nullopt);
  EXPECT_EQ(env::raw("VOLCAL_TEST_KNOB"), std::nullopt);
  EXPECT_EQ(env::warning_count_for_testing(), 0);
}

TEST_F(EnvTest, ValidValuesParseWithoutWarning) {
  ASSERT_EQ(setenv("VOLCAL_TEST_KNOB", "8", 1), 0);
  EXPECT_EQ(env::positive_int("VOLCAL_TEST_KNOB", 256, "default"), 8);
  ASSERT_EQ(setenv("VOLCAL_TEST_KNOB", "256", 1), 0);
  EXPECT_EQ(env::positive_int("VOLCAL_TEST_KNOB", 256, "default"), 256);
  EXPECT_EQ(env::warning_count_for_testing(), 0);
}

TEST_F(EnvTest, RejectsGarbageWithOneWarningPerVariable) {
  for (const char* bad : {"", "abc", "8 threads", "12junk", "0", "-3", "257",
                          "99999999999999999999"}) {
    env::reset_warnings_for_testing();
    ASSERT_EQ(setenv("VOLCAL_TEST_KNOB", bad, 1), 0);
    EXPECT_EQ(env::positive_int("VOLCAL_TEST_KNOB", 256, "default"), std::nullopt)
        << "value \"" << bad << "\" should be rejected";
    EXPECT_EQ(env::warning_count_for_testing(), 1) << "value \"" << bad << "\"";
    // The same variable never warns twice in one process.
    EXPECT_EQ(env::positive_int("VOLCAL_TEST_KNOB", 256, "default"), std::nullopt);
    EXPECT_EQ(env::warning_count_for_testing(), 1);
  }
}

TEST_F(EnvTest, MbToBytesIsOverflowSafe) {
  EXPECT_EQ(env::mb_to_bytes(1), std::size_t{1} << 20);
  EXPECT_EQ(env::mb_to_bytes(256), std::size_t{256} << 20);
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  // Values at and beyond the representable range clamp instead of wrapping.
  EXPECT_EQ(env::mb_to_bytes(std::numeric_limits<std::int64_t>::max()),
            (kMax >> 20) << 20);
  EXPECT_GE(env::mb_to_bytes(std::numeric_limits<std::int64_t>::max()),
            env::mb_to_bytes(256));
}

TEST_F(EnvTest, ThreadCountParsesStrictly) {
  // Explicit request wins regardless of the environment.
  ASSERT_EQ(setenv("VOLCAL_THREADS", "7", 1), 0);
  EXPECT_EQ(detail::resolve_thread_count(3), 3);
  EXPECT_EQ(detail::resolve_thread_count(0), 7);
  // Garbage falls back to serial — loudly (one warning), not silently.
  env::reset_warnings_for_testing();
  ASSERT_EQ(setenv("VOLCAL_THREADS", "eight", 1), 0);
  EXPECT_EQ(detail::resolve_thread_count(0), 1);
  EXPECT_EQ(env::warning_count_for_testing(), 1);
  ASSERT_EQ(unsetenv("VOLCAL_THREADS"), 0);
  EXPECT_EQ(detail::resolve_thread_count(0), 1);
}

TEST_F(EnvTest, BackendParsesStrictly) {
  ASSERT_EQ(setenv("VOLCAL_BACKEND", "basic", 1), 0);
  EXPECT_EQ(backend_from_env(), ExecBackend::Basic);
  env::reset_warnings_for_testing();
  ASSERT_EQ(setenv("VOLCAL_BACKEND", "basick", 1), 0);
  EXPECT_EQ(backend_from_env(), ExecBackend::Batched);  // safe default kept
  EXPECT_EQ(env::warning_count_for_testing(), 1);
  ASSERT_EQ(unsetenv("VOLCAL_BACKEND"), 0);
  EXPECT_EQ(backend_from_env(), ExecBackend::Batched);
}

}  // namespace
}  // namespace volcal
