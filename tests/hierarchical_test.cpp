#include "lcl/problems/hierarchical_thc.hpp"

#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

using Free = FreeSource<ColoredTreeLabeling>;
using Src = InstanceSource<ColoredTreeLabeling>;

// Global output pass: one shared memoized solver over a cost-free source.
std::vector<ThcColor> outputs_all(const HierarchicalInstance& inst, const HthcConfig& cfg) {
  Free src(inst);
  HthcSolver<Free> solver(src, cfg);
  std::vector<ThcColor> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) out[v] = solver.solve_at(v);
  return out;
}

// ---------------------------------------------------------------------------
// HierView (query side) mirrors Hierarchy (global side)
// ---------------------------------------------------------------------------

struct ViewParam {
  int k;
  NodeIndex backbone;
  std::uint64_t seed;
};

class HierViewMatches : public ::testing::TestWithParam<ViewParam> {};

TEST_P(HierViewMatches, LevelsLinksLeavesRoots) {
  const auto [k, b, seed] = GetParam();
  auto inst = make_hierarchical_instance(k, b, seed);
  Hierarchy h(inst.graph, inst.labels.tree, k + 1);
  Free src(inst);
  HierView<Free> view(src, k + 1);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(view.level(v), h.level(v)) << v;
    EXPECT_EQ(view.backbone_next(v), h.backbone_next(v)) << v;
    EXPECT_EQ(view.backbone_prev(v), h.backbone_prev(v)) << v;
    EXPECT_EQ(view.down(v), h.down(v)) << v;
    EXPECT_EQ(view.is_level_leaf(v), h.is_level_leaf(v)) << v;
    EXPECT_EQ(view.is_level_root(v), h.is_level_root(v)) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierViewMatches,
                         ::testing::Values(ViewParam{2, 5, 1}, ViewParam{3, 4, 2},
                                           ViewParam{4, 3, 3}));

TEST(HierViewMatchesNoise, ArbitraryLabels) {
  auto inst = make_noise_instance(150, 4, 77);
  Hierarchy h(inst.graph, inst.labels.tree, 4);
  Free src(inst);
  HierView<Free> view(src, 4);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(view.level(v), h.level(v)) << v;
    EXPECT_EQ(view.down(v), h.down(v)) << v;
  }
}

// ---------------------------------------------------------------------------
// Solver validity (Prop. 5.12 deterministic, Prop. 5.14 randomized)
// ---------------------------------------------------------------------------

struct SolveParam {
  int k;
  NodeIndex backbone;
  std::uint64_t seed;
  bool waypoints;
};

class HthcSolve : public ::testing::TestWithParam<SolveParam> {};

TEST_P(HthcSolve, OutputsValid) {
  const auto [k, b, seed, waypoints] = GetParam();
  auto inst = make_hierarchical_instance(k, b, seed);
  RandomTape tape(inst.ids, seed * 1001 + 7);
  auto cfg = HthcConfig::make(k, inst.node_count(), waypoints, &tape);
  auto out = outputs_all(inst, cfg);
  HierarchicalTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "k=" << k << " b=" << b << " first bad "
                          << verdict.first_bad;
}

INSTANTIATE_TEST_SUITE_P(
    Balanced, HthcSolve,
    ::testing::Values(SolveParam{2, 5, 1, false}, SolveParam{2, 12, 2, false},
                      SolveParam{3, 4, 3, false}, SolveParam{3, 7, 4, false},
                      SolveParam{4, 3, 5, false}, SolveParam{2, 12, 6, true},
                      SolveParam{3, 6, 7, true}, SolveParam{4, 3, 8, true},
                      SolveParam{2, 30, 9, true}, SolveParam{3, 10, 10, true}));

// Lens instances: deep and shallow backbones mixed.
struct LensParam {
  std::vector<NodeIndex> lens;
  std::uint64_t seed;
  bool waypoints;
};

class HthcLens : public ::testing::TestWithParam<LensParam> {};

TEST_P(HthcLens, OutputsValid) {
  const auto& p = GetParam();
  auto inst = make_hierarchical_instance_lens(p.lens, p.seed);
  const int k = static_cast<int>(p.lens.size());
  RandomTape tape(inst.ids, p.seed * 31 + 5);
  auto cfg = HthcConfig::make(k, inst.node_count(), p.waypoints, &tape);
  auto out = outputs_all(inst, cfg);
  HierarchicalTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, HthcLens,
    ::testing::Values(LensParam{{40, 3}, 1, false},   // deep level-1 floors
                      LensParam{{3, 40}, 2, false},   // deep top backbone
                      LensParam{{3, 40}, 3, true},    // same, randomized
                      LensParam{{40, 3}, 4, true},
                      LensParam{{2, 30, 2}, 5, false},
                      LensParam{{2, 30, 2}, 6, true},
                      LensParam{{60, 2, 2}, 7, true},
                      LensParam{{1, 1, 50}, 8, false}));

TEST(HthcSolve, InstrumentationAccountsForTheWork) {
  // Balanced family: every component is shallow, so the solver must take the
  // shortcut everywhere and never scan.
  {
    auto inst = make_hierarchical_instance(2, 8, 3);
    auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
    Free src(inst);
    HthcSolver<Free> solver(src, cfg);
    for (NodeIndex v = 0; v < inst.node_count(); ++v) solver.solve_at(v);
    const auto& s = solver.stats();
    EXPECT_EQ(s.computes, inst.node_count());
    EXPECT_EQ(s.shallow_hits, inst.node_count());
    EXPECT_EQ(s.scans, 0);
    EXPECT_EQ(s.level1_declines, 0);
  }
  // Deep top over light floors: the top components scan, and the randomized
  // variant skips non-way-points where the deterministic one recurses.
  {
    auto inst = make_hierarchical_instance_lens({6, 400}, 5);
    RandomTape tape(inst.ids, 9);
    auto det_cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
    auto rnd_cfg = HthcConfig::make(2, inst.node_count(), true, &tape, 0.5);
    Free src(inst);
    HthcSolver<Free> det(src, det_cfg);
    HthcSolver<Free> rnd(src, rnd_cfg);
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      det.solve_at(v);
      rnd.solve_at(v);
    }
    EXPECT_EQ(det.stats().waypoint_skips, 0);
    EXPECT_GT(rnd.stats().waypoint_skips, 0);
    // The deterministic line-7 shortcut certifies once per deep-top node and
    // never scans (every floor is light); the randomized variant must scan
    // past non-way-points.
    EXPECT_EQ(det.stats().scan_steps, 0);
    EXPECT_GT(rnd.stats().scan_steps, 0);
    EXPECT_GT(det.stats().memo_hits, 0);  // shared memo across starts
  }
  // On the deep-nest family the roles reverse: every deterministic scan step
  // pays a certify recursion into a declining floor, while the randomized
  // scan only recurses at sampled way-points.
  {
    auto inst = make_hierarchical_instance_lens({400, 400, 3}, 5);
    RandomTape tape(inst.ids, 9);
    auto det_cfg = HthcConfig::make(3, inst.node_count(), false, nullptr);
    auto rnd_cfg = HthcConfig::make(3, inst.node_count(), true, &tape, 0.5);
    Hierarchy h(inst.graph, inst.labels.tree, 4);
    NodeIndex start = kNoNode;
    for (const auto& bb : h.backbones()) {
      if (bb.level == 2) {
        start = bb.nodes[bb.nodes.size() / 2];
        break;
      }
    }
    ASSERT_NE(start, kNoNode);
    Free src(inst);
    HthcSolver<Free> det(src, det_cfg);
    HthcSolver<Free> rnd(src, rnd_cfg);
    det.solve_at(start);
    rnd.solve_at(start);
    EXPECT_GT(det.stats().certify_calls, 4 * rnd.stats().certify_calls);
  }
}

// Regression: on a deep top backbone with sparse way-points (p well below 1),
// the u- and w-scans run in *both* directions with independent window
// budgets.  An earlier version let the downward walk exhaust a shared budget,
// leaving the upward scan empty — every mid-backbone node then declined,
// which is invalid at level k.
TEST(HthcSolve, DeepTopWithSparseWaypointsStaysValid) {
  auto inst = make_hierarchical_instance_lens({6, 900}, 7);
  // At c=0.1 validity is a whp property, not a certainty: the pinned tape
  // seed must place a way-point in every window-length stretch of the top
  // backbone.  Re-pin (any seed with full coverage works) if the tape's
  // stream layout changes; the guarded budget bug fails for *every* seed.
  RandomTape tape(inst.ids, 2);
  for (const double c : {0.1, 0.5, 3.0}) {
    auto cfg = HthcConfig::make(2, inst.node_count(), true, &tape, c);
    ASSERT_LT(cfg.waypoint_p(inst.node_count()), 1.0);
    auto out = outputs_all(inst, cfg);
    HierarchicalTHCProblem problem(inst, 2);
    auto verdict = verify_all(problem, inst, out);
    EXPECT_TRUE(verdict.ok) << "c=" << c << " first bad " << verdict.first_bad;
  }
}

// Cycle backbones (Obs. 5.4): the top component is a directed LC-cycle; the
// shallow rule's min-ID representative must produce a unanimous valid color.
struct CycleParam {
  int k;
  NodeIndex cycle_len;
  NodeIndex backbone_len;
  bool waypoints;
};

class HthcCycles : public ::testing::TestWithParam<CycleParam> {};

TEST_P(HthcCycles, OutputsValid) {
  const auto [k, cl, bl, waypoints] = GetParam();
  auto inst = make_hierarchical_cycle_instance(k, cl, bl, 7);
  RandomTape tape(inst.ids, 13);
  auto cfg = HthcConfig::make(k, inst.node_count(), waypoints, &tape);
  auto out = outputs_all(inst, cfg);
  HierarchicalTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
  // Shallow cycles color unanimously.
  Hierarchy h(inst.graph, inst.labels.tree, k + 1);
  if (cl <= cfg.window) {
    for (NodeIndex v = 0; v + 1 < cl; ++v) {
      if (h.level(v) == k && h.level(v + 1) == k) {
        EXPECT_EQ(out[v], out[v + 1]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HthcCycles,
                         ::testing::Values(CycleParam{2, 5, 6, false},
                                           CycleParam{2, 5, 6, true},
                                           CycleParam{3, 4, 4, false},
                                           CycleParam{2, 64, 4, false},
                                           CycleParam{2, 64, 4, true}));

TEST(HthcCycles, CycleStructureRecognized) {
  auto inst = make_hierarchical_cycle_instance(2, 6, 5, 3);
  Hierarchy h(inst.graph, inst.labels.tree, 3);
  const auto top = h.backbone_of(0);
  ASSERT_GE(top, 0);
  EXPECT_TRUE(h.backbones()[static_cast<std::size_t>(top)].is_cycle);
  EXPECT_EQ(h.backbones()[static_cast<std::size_t>(top)].nodes.size(), 6u);
  for (NodeIndex v = 0; v < 6; ++v) {
    EXPECT_EQ(h.level(v), 2);
    EXPECT_FALSE(h.is_level_root(v));
    EXPECT_FALSE(h.is_level_leaf(v));
  }
}

// Per-execution (cost-accounted) runs agree with the global pass: the solver
// is a deterministic function of (instance, tape), independent of memo
// sharing.
TEST(HthcSolve, PerExecutionMatchesGlobalPass) {
  auto inst = make_hierarchical_instance(2, 8, 11);
  RandomTape tape(inst.ids, 42);
  auto cfg = HthcConfig::make(2, inst.node_count(), true, &tape);
  auto global = outputs_all(inst, cfg);
  for (NodeIndex v = 0; v < inst.node_count(); v += 7) {
    Execution exec(inst.graph, inst.ids, v);
    Src src(inst, exec);
    HthcSolver<Src> solver(src, cfg);
    EXPECT_EQ(solver.solve_at(v), global[v]) << v;
  }
}

// ---------------------------------------------------------------------------
// Cost shapes (Thm. 5.9)
// ---------------------------------------------------------------------------

TEST(HthcCosts, BalancedInstanceDistanceScalesAsRoot) {
  // On the Prop. 5.13 balanced family every backbone has length n^{1/k}; the
  // solver's distance from any node is O(k · n^{1/k}).
  for (const auto& [k, b] : std::vector<std::pair<int, NodeIndex>>{{2, 16}, {3, 8}}) {
    auto inst = make_hierarchical_instance(k, b, 13);
    auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
    std::int64_t max_dist = 0, max_vol = 0;
    for (NodeIndex v = 0; v < inst.node_count(); v += std::max<NodeIndex>(1, inst.node_count() / 40)) {
      Execution exec(inst.graph, inst.ids, v);
      Src src(inst, exec);
      HthcSolver<Src> solver(src, cfg);
      solver.solve_at(v);
      max_dist = std::max(max_dist, exec.distance());
      max_vol = std::max(max_vol, exec.volume());
    }
    EXPECT_LE(max_dist, 4 * k * (cfg.window + 2)) << "k=" << k;
    EXPECT_GE(max_dist, b / 2) << "k=" << k;
    EXPECT_LE(max_vol, 8 * k * (cfg.window + 2)) << "k=" << k;  // shallow: no recursion
  }
}

TEST(HthcCosts, WaypointVolumePolylogFactorOnDeepTop) {
  // Deep top backbone over light subtrees: the randomized solver's volume
  // stays Õ(n^{1/k}) while scanning for certifying way-points.
  auto inst = make_hierarchical_instance_lens({6, 400}, 3);
  const int k = 2;
  RandomTape tape(inst.ids, 19);
  auto cfg = HthcConfig::make(k, inst.node_count(), true, &tape);
  std::int64_t max_vol = 0;
  for (NodeIndex v = 0; v < inst.node_count(); v += 37) {
    Execution exec(inst.graph, inst.ids, v);
    Src src(inst, exec);
    HthcSolver<Src> solver(src, cfg);
    solver.solve_at(v);
    max_vol = std::max(max_vol, exec.volume());
  }
  const double root = std::sqrt(static_cast<double>(inst.node_count()));
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  EXPECT_LE(max_vol, static_cast<std::int64_t>(12 * root * logn));
}

// ---------------------------------------------------------------------------
// The "deep nest" hard family: a length-3 shallow top over nested just-deep
// backbones.  Middle levels validly decline; the deterministic solver pays a
// full recursion per scanned backbone node (volume Θ̃(n) for k >= 3), while
// the waypoint solver recurses only at Θ(log n) sampled nodes per window.
// ---------------------------------------------------------------------------

std::vector<NodeIndex> deep_nest_lens(int k, NodeIndex b) {
  std::vector<NodeIndex> lens(static_cast<std::size_t>(k), b);
  lens.back() = 3;  // shallow top at level k
  return lens;
}

TEST(DeepNest, MiddleLevelsDeclineAndOutputsValid) {
  const int k = 3;
  const NodeIndex b = 60;
  auto inst = make_hierarchical_instance_lens(deep_nest_lens(k, b), 3);
  auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
  ASSERT_GT(b, cfg.window) << "family must be deep for the test to bite";
  auto out = outputs_all(inst, cfg);
  HierarchicalTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  ASSERT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
  Hierarchy h(inst.graph, inst.labels.tree, k + 1);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (h.level(v) < k) {
      EXPECT_EQ(out[v], ThcColor::D) << v;  // every deep component declines
    } else {
      EXPECT_TRUE(out[v] == ThcColor::R || out[v] == ThcColor::B) << v;
    }
  }
}

TEST(DeepNest, DeterministicVolumeDwarfsRandomized) {
  const int k = 3;
  const NodeIndex b = 400;
  auto inst = make_hierarchical_instance_lens(deep_nest_lens(k, b), 5);
  RandomTape tape(inst.ids, 23);
  auto det_cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
  // c = 0.5 keeps the sampling probability well below 1 at this n; on this
  // family validity never depends on way-point density (everything below the
  // top validly declines), so the low constant is safe.
  auto rnd_cfg = HthcConfig::make(k, inst.node_count(), true, &tape, /*c=*/0.5);
  ASSERT_GT(b, det_cfg.window);
  ASSERT_LT(rnd_cfg.waypoint_p(inst.node_count()), 0.3);
  // Start in the middle of a level-(k-1) backbone: the deterministic scan
  // recursively explores a floor per scanned node.
  Hierarchy h(inst.graph, inst.labels.tree, k + 1);
  NodeIndex start = kNoNode;
  for (const auto& bb : h.backbones()) {
    if (bb.level == k - 1) {
      start = bb.nodes[bb.nodes.size() / 2];
      break;
    }
  }
  ASSERT_NE(start, kNoNode);
  std::int64_t det_vol, rnd_vol;
  {
    Execution exec(inst.graph, inst.ids, start);
    Src src(inst, exec);
    HthcSolver<Src> solver(src, det_cfg);
    EXPECT_EQ(solver.solve_at(start), ThcColor::D);
    det_vol = exec.volume();
  }
  {
    Execution exec(inst.graph, inst.ids, start);
    Src src(inst, exec);
    HthcSolver<Src> solver(src, rnd_cfg);
    EXPECT_EQ(solver.solve_at(start), ThcColor::D);
    rnd_vol = exec.volume();
  }
  // Deterministic pays a floor-walk per scanned node; randomized only at
  // sampled way-points.
  EXPECT_GT(det_vol, 3 * rnd_vol) << "det=" << det_vol << " rnd=" << rnd_vol;
  // Deterministic volume is a window of floors ≈ window·b = Θ̃(n^{2/3}) here;
  // nesting one level deeper (k=4 benches) reaches Θ̃(n).
  EXPECT_GT(det_vol, 100 * static_cast<std::int64_t>(
                               std::cbrt(static_cast<double>(inst.node_count()))));
}

// ---------------------------------------------------------------------------
// Checker semantics (Def. 5.5)
// ---------------------------------------------------------------------------

TEST(HthcChecker, ExemptRequiredAboveK) {
  auto inst = make_hierarchical_instance(3, 3, 1);
  HierarchicalTHCProblem problem(inst, 2);  // k = 2 < construction depth 3
  // Top-level nodes have level 3 > k: they must output X.
  auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
  auto out = outputs_all(inst, cfg);
  EXPECT_TRUE(verify_all(problem, inst, out).ok);
  Hierarchy h(inst.graph, inst.labels.tree, 3);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (!h.in_hierarchy(v)) {
      EXPECT_EQ(out[v], ThcColor::X) << v;
    }
  }
}

TEST(HthcChecker, RejectsNonUnanimousLevel1) {
  auto inst = make_hierarchical_instance(1, 6, 2);
  HierarchicalTHCProblem problem(inst, 1);
  auto cfg = HthcConfig::make(1, inst.node_count(), false, nullptr);
  auto out = outputs_all(inst, cfg);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  out[2] = out[2] == ThcColor::R ? ThcColor::B : ThcColor::R;
  EXPECT_FALSE(verify_all(problem, inst, out).ok);
}

TEST(HthcChecker, RejectsXWithoutCertificate) {
  auto inst = make_hierarchical_instance(2, 4, 3);
  HierarchicalTHCProblem problem(inst, 2);
  auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
  auto out = outputs_all(inst, cfg);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  // Force some level-2 node exempt while its subtree declines: find a level-2
  // node, set it X, set its down-subtree root to D.
  Hierarchy h(inst.graph, inst.labels.tree, 3);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (h.level(v) == 2) {
      out[v] = ThcColor::X;
      out[h.down(v)] = ThcColor::D;
      break;
    }
  }
  EXPECT_FALSE(verify_all(problem, inst, out).ok);
}

TEST(HthcChecker, LeafMayEchoDeclineOrExemptAtMidLevels) {
  auto inst = make_hierarchical_instance(3, 3, 4);
  Hierarchy h(inst.graph, inst.labels.tree, 4);
  // Pick a level-2 leaf; condition 2 allows χ_in / D / X there (X needs no
  // extra certificate below k per the literal Def. 5.5 condition list).
  NodeIndex leaf = kNoNode;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (h.level(v) == 2 && h.is_level_leaf(v)) {
      leaf = v;
      break;
    }
  }
  ASSERT_NE(leaf, kNoNode);
  HierarchicalTHCProblem problem(inst, 3);
  auto cfg = HthcConfig::make(3, inst.node_count(), false, nullptr);
  auto out = outputs_all(inst, cfg);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  std::vector<ThcColor> mutated = out;
  mutated[leaf] = to_thc(inst.labels.color[leaf]);
  EXPECT_TRUE(problem.valid_at(inst, mutated, leaf));
  mutated[leaf] = ThcColor::D;
  EXPECT_TRUE(problem.valid_at(inst, mutated, leaf));
}

}  // namespace
}  // namespace volcal
