// Replays the committed reproducer corpus (tests/corpus/*.repro) through the
// full invariant checker.  Every file in the corpus was once a minimized
// fuzz failure (or pins a scenario class the fuzzer relies on); each must
// now pass check_case, and must keep passing at any thread count — the
// corpus is the harness's memory of the bugs it has caught.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/repro.hpp"

#ifndef VOLCAL_CORPUS_DIR
#error "build must define VOLCAL_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace volcal::check {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(VOLCAL_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasTheCommittedReproducers) {
  // The corpus ships with at least the three satellite-bug reproducers plus
  // per-family scenario pins; an empty directory means the build is pointing
  // at the wrong place, which would turn the replay test into a silent no-op.
  EXPECT_GE(corpus_files().size(), 12u);
}

TEST(FuzzCorpus, EveryReproducerParsesAndPasses) {
  for (const auto& path : corpus_files()) {
    FuzzCase c;
    std::string recorded_error;
    std::string why;
    ASSERT_TRUE(load_repro_file(path.string(), &c, &recorded_error, &why))
        << path << ": " << why;
    ASSERT_FALSE(c.family.empty()) << path;
    // The full differential stack — base invariants plus the cache-policy,
    // execution-backend and snapshot round-trip differentials, exactly what
    // `volcal_fuzz --cache --backend --snapshot` runs per case.
    CheckResult result = check_case(c);
    if (result.ok) result = check_cache_case(c);
    if (result.ok) result = check_backend_case(c);
    if (result.ok) result = check_snapshot_case(c);
    EXPECT_TRUE(result.ok) << path << "\n  case: " << describe(c)
                           << "\n  originally: " << recorded_error
                           << "\n  now: " << result.error;
  }
}

TEST(FuzzCorpus, CoversTheSatelliteBugs) {
  // The three bugs this harness was built around must stay pinned by name.
  std::vector<std::string> names;
  for (const auto& path : corpus_files()) names.push_back(path.filename().string());
  for (const char* expected : {"sampled-starts-count1.repro", "tape-word-bit-aliasing.repro",
                               "stats-median-even-count.repro",
                               "stats-p95-nearest-rank.repro",
                               "batched-ball-exhausted-component.repro",
                               "batched-shared-cache-batch-boundary.repro"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "corpus lost " << expected;
  }
}

}  // namespace
}  // namespace volcal::check
