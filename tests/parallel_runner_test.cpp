// Determinism contract of the parallel sweep engine: SweepResult (outputs,
// per-node volume/distance, sup-costs, total_queries, truncated) must be
// bit-identical to the serial runner at any thread count — asserted here at
// 1, 2 and 8 threads for every problem family in the suite, plus the budget
// truncation path and RandomTape bit-usage merging.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/mis.hpp"
#include "lcl/problems/ring_coloring.hpp"
#include "runtime/parallel_runner.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

constexpr int kThreadCounts[] = {2, 8};

template <typename Label>
void expect_identical(const SweepResult<Label>& serial, const SweepResult<Label>& parallel,
                      int threads) {
  EXPECT_EQ(serial.output, parallel.output) << "outputs diverged at " << threads << " threads";
  EXPECT_EQ(serial.volume, parallel.volume) << "volumes diverged at " << threads << " threads";
  EXPECT_EQ(serial.distance, parallel.distance)
      << "distances diverged at " << threads << " threads";
  EXPECT_EQ(serial.stats.max_volume, parallel.stats.max_volume);
  EXPECT_EQ(serial.stats.max_distance, parallel.stats.max_distance);
  EXPECT_EQ(serial.stats.total_queries, parallel.stats.total_queries);
  EXPECT_EQ(serial.stats.truncated, parallel.stats.truncated);
}

// Runs the solver through ParallelRunner at 1, 2 and 8 threads and asserts
// all three SweepResults are bit-identical.
template <typename Solver>
void check_thread_invariance(const Graph& g, const IdAssignment& ids, Solver&& solver,
                             std::int64_t budget = 0, RandomTape* tape = nullptr) {
  auto serial = ParallelRunner(1).run_at_all_nodes(g, ids, solver, budget, tape);
  EXPECT_GT(serial.stats.max_volume, 0);
  for (const int threads : kThreadCounts) {
    auto parallel = ParallelRunner(threads).run_at_all_nodes(g, ids, solver, budget, tape);
    expect_identical(serial, parallel, threads);
  }
}

TEST(ParallelRunner, LeafColoringDeterministicSolver) {
  auto inst = make_complete_binary_tree(8, Color::Red, Color::Blue);
  check_thread_invariance(inst.graph, inst.ids, [&](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> src(inst, exec);
    return leafcoloring_nearest_leaf(src);
  });
}

TEST(ParallelRunner, LeafColoringRandomizedSolver) {
  auto inst = make_random_full_binary_tree(401, 3);
  RandomTape tape(inst.ids, 7);
  check_thread_invariance(
      inst.graph, inst.ids,
      [&](Execution& exec) {
        InstanceSource<ColoredTreeLabeling> src(inst, exec);
        return rw_to_leaf(src, tape);
      },
      /*budget=*/0, &tape);
}

TEST(ParallelRunner, BalancedTreeSolver) {
  auto inst = make_balanced_instance(7);
  check_thread_invariance(inst.graph, inst.ids, [&](Execution& exec) {
    InstanceSource<BalancedTreeLabeling> src(inst, exec);
    return balancedtree_solve(src);
  });
}

TEST(ParallelRunner, HierarchicalThcSolver) {
  auto inst = make_hierarchical_instance(2, 24, 11);
  auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
  check_thread_invariance(inst.graph, inst.ids, [&](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> src(inst, exec);
    HthcSolver<InstanceSource<ColoredTreeLabeling>> solver(src, cfg);
    return solver.solve();
  });
}

TEST(ParallelRunner, RingColoringSolver) {
  auto ring = make_ring(257, 5);
  check_thread_invariance(ring.graph, ring.ids, [&](Execution& exec) {
    return ring_color_cole_vishkin(ring, exec);
  });
}

// bool-returning solvers exercise the vector<bool> output path, which must
// not bit-pack concurrent writes.
TEST(ParallelRunner, BoolOutputSolver) {
  auto ring = make_ring(511, 9);
  RandomTape tape(ring.ids, 13);
  check_thread_invariance(
      ring.graph, ring.ids,
      [&](Execution& exec) { return mis_lca_query(exec, tape); },
      /*budget=*/0, &tape);
}

TEST(ParallelRunner, BudgetTruncationIsDeterministic) {
  auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  check_thread_invariance(
      inst.graph, inst.ids,
      [](Execution& exec) {
        explore_ball(exec, 10);  // wants the whole graph
        return 0;
      },
      /*budget=*/9);
  auto run = ParallelRunner(8).run_at_all_nodes(
      inst.graph, inst.ids,
      [](Execution& exec) {
        explore_ball(exec, 10);
        return 0;
      },
      /*budget=*/9);
  EXPECT_GT(run.stats.truncated, 0);
  for (const auto v : run.volume) EXPECT_LE(v, 9);
}

TEST(ParallelRunner, TapeBitAccountingMergesDeterministically) {
  auto inst = make_random_full_binary_tree(301, 17);
  auto sweep = [&](int threads) {
    RandomTape tape(inst.ids, 23);
    ParallelRunner(threads).run_at_all_nodes(
        inst.graph, inst.ids,
        [&](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          return rw_to_leaf(src, tape);
        },
        0, &tape);
    std::vector<std::uint64_t> bits;
    bits.reserve(static_cast<std::size_t>(inst.node_count()));
    for (NodeIndex v = 0; v < inst.node_count(); ++v) bits.push_back(tape.bits_used(v));
    return bits;
  };
  const auto serial = sweep(1);
  EXPECT_EQ(serial, sweep(2));
  EXPECT_EQ(serial, sweep(8));
}

TEST(ParallelRunner, ScopedUsageDefersMergeUntilClose) {
  auto ids = IdAssignment::sequential(4);
  RandomTape tape(ids, 9);
  {
    RandomTape::ScopedUsage scope(tape);
    tape.bit(1, 1, 5);
    EXPECT_EQ(scope.local().bits(1), 6u);
    EXPECT_EQ(tape.bits_used(1), 0u);  // still worker-local
  }
  EXPECT_EQ(tape.bits_used(1), 6u);  // merged on scope close
}

TEST(ParallelRunner, SampledStartSweepMatchesSerial) {
  auto inst = make_complete_binary_tree(9, Color::Red, Color::Blue);
  std::vector<NodeIndex> starts{0, 5, 100, 300, inst.node_count() - 1};
  auto solver = [&](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> src(inst, exec);
    return leafcoloring_nearest_leaf(src);
  };
  auto serial = ParallelRunner(1).run_at(inst.graph, inst.ids, starts, solver);
  ASSERT_EQ(serial.output.size(), starts.size());
  for (const int threads : kThreadCounts) {
    auto parallel = ParallelRunner(threads).run_at(inst.graph, inst.ids, starts, solver);
    expect_identical(serial, parallel, threads);
  }
}

TEST(ParallelRunner, MoreThreadsThanStartsIsClamped) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Blue);  // 7 nodes
  auto run = ParallelRunner(64).run_at_all_nodes(inst.graph, inst.ids, [](Execution& exec) {
    explore_ball(exec, 1);
    return 0;
  });
  EXPECT_EQ(static_cast<NodeIndex>(run.output.size()), inst.node_count());
  EXPECT_TRUE(satisfies_lemma_2_5(inst.graph, run));
}

TEST(ParallelRunner, ThreadCountResolution) {
  EXPECT_EQ(ParallelRunner(4).threads(), 4);
  ASSERT_EQ(setenv("VOLCAL_THREADS", "3", 1), 0);
  EXPECT_EQ(ParallelRunner().threads(), 3);
  EXPECT_EQ(ParallelRunner(2).threads(), 2);  // explicit beats env
  ASSERT_EQ(unsetenv("VOLCAL_THREADS"), 0);
  EXPECT_EQ(ParallelRunner().threads(), 1);  // determinism-by-default
}

// Non-budget exceptions thrown by a solver propagate out of the sweep.
TEST(ParallelRunner, SolverExceptionsPropagate) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  for (const int threads : {1, 2, 8}) {
    EXPECT_THROW(ParallelRunner(threads).run_at_all_nodes(
                     inst.graph, inst.ids,
                     [](Execution& exec) {
                       if (exec.start() == 7) throw std::runtime_error("boom");
                       return 0;
                     }),
                 std::runtime_error);
  }
}

}  // namespace
}  // namespace volcal
