#include "lcl/problems/promise_leaf_coloring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "labels/generators.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

using Src = InstanceSource<ColoredTreeLabeling>;

TEST(Promise, DetectsPromiseInputs) {
  EXPECT_TRUE(
      satisfies_leaf_promise(make_complete_binary_tree(4, Color::Red, Color::Blue)));
  EXPECT_TRUE(
      satisfies_leaf_promise(make_complete_binary_tree(4, Color::Blue, Color::Blue)));
  // Random colors almost surely break the promise.
  EXPECT_FALSE(satisfies_leaf_promise(make_random_full_binary_tree(101, 3)));
}

class PromiseSecretWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PromiseSecretWalk, SolvesUnderSecretRandomness) {
  auto inst = make_complete_binary_tree(9, Color::Red, Color::Blue);
  ASSERT_TRUE(PromiseLeafColoringProblem::admissible(inst));
  RandomTape tape(inst.ids, GetParam(), RandomnessModel::Secret);
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    Src src(inst, exec);
    return promise_rw_secret(src, tape);
  });
  PromiseLeafColoringProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
  // Volume O(log n): the walk descends one child per step.
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  EXPECT_LE(result.stats.max_volume, static_cast<std::int64_t>(8 * logn));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PromiseSecretWalk, ::testing::Values(1u, 2u, 3u, 4u));

TEST(PromiseSecret, SkewedTreesStillLogarithmicWhp) {
  // On a random full binary tree the secret walk halves the reachable set
  // with probability >= 1/2 per step (the Prop. 3.10 argument).
  auto inst = make_random_full_binary_tree(4001, 7);
  // Promise-ify: recolor all leaves blue.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (is_leaf(inst.graph, inst.labels.tree, v)) inst.labels.color[v] = Color::Blue;
  }
  ASSERT_TRUE(satisfies_leaf_promise(inst));
  RandomTape tape(inst.ids, 11, RandomnessModel::Secret);
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    Src src(inst, exec);
    return promise_rw_secret(src, tape);
  });
  PromiseLeafColoringProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  EXPECT_LE(result.stats.max_volume, static_cast<std::int64_t>(16 * logn));
}

TEST(PromiseSecret, WithoutPromiseSecretWalkFails) {
  // The same algorithm on a non-promise input: walks from different nodes
  // reach different leaves, so the joint output goes invalid — secret
  // randomness does not solve general LeafColoring this way (§7.4).
  auto inst = make_random_full_binary_tree(2001, 3);
  ASSERT_FALSE(satisfies_leaf_promise(inst));
  RandomTape tape(inst.ids, 13, RandomnessModel::Secret);
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    Src src(inst, exec);
    return promise_rw_secret(src, tape);
  });
  LeafColoringProblem problem;
  EXPECT_FALSE(verify_all(problem, inst, result.output).ok);
}

TEST(PromiseSecret, NoCrossNodeTapeReads) {
  // Secret model enforcement is active during the whole run: the walk never
  // touches another node's string (would throw).
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Red);
  RandomTape tape(inst.ids, 17, RandomnessModel::Secret);
  for (NodeIndex v = 0; v < inst.node_count(); v += 9) {
    Execution exec(inst.graph, inst.ids, v);
    Src src(inst, exec);
    EXPECT_NO_THROW(promise_rw_secret(src, tape));
  }
}

}  // namespace
}  // namespace volcal
