// The probe-plan layer and its batched execution backend.
//
// Three contracts, in increasing strength:
//   * plan IR — the ProbePlan value type, its names/eligibility predicate,
//     the VOLCAL_BACKEND knob, and which plan each registry family registered
//     (ball-4 promises BatchedBall(4); everything else is IndependentStarts);
//   * executor exactness — BatchedBallExecutor reproduces explore_ball on a
//     per-start Execution meter-for-meter (volume, distance, query count),
//     including component exhaustion, duplicate centers in one batch, radius
//     0 and executor reuse across runs;
//   * sweep equivalence — run_planned on the Batched backend is bit-identical
//     to the Basic backend for EVERY registry family under every cache policy
//     at 1 and 8 threads (outputs, per-start costs, aggregate costs), with
//     the stats tagged by the plan/backend that actually executed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/registry.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

// --- plan IR ---------------------------------------------------------------

TEST(ProbePlanIr, FactoriesNamesAndEligibility) {
  constexpr ProbePlan independent = ProbePlan::independent();
  constexpr ProbePlan ball = ProbePlan::batched_ball(4);
  constexpr ProbePlan frontier = ProbePlan::shared_frontier(2);
  static_assert(!independent.batchable());
  static_assert(ball.batchable());
  static_assert(frontier.batchable());
  EXPECT_EQ(independent.kind, PlanKind::IndependentStarts);
  EXPECT_EQ(ball.kind, PlanKind::BatchedBall);
  EXPECT_EQ(ball.radius, 4);
  EXPECT_STREQ(independent.name(), "independent-starts");
  EXPECT_STREQ(ball.name(), "batched-ball");
  EXPECT_STREQ(frontier.name(), "shared-frontier");
  EXPECT_EQ(ball, ProbePlan::batched_ball(4));
  EXPECT_NE(ball, ProbePlan::batched_ball(3));
  EXPECT_NE(ball, independent);
  // A negative radius never batches, whatever the kind says.
  constexpr ProbePlan bad{PlanKind::BatchedBall, -1};
  static_assert(!bad.batchable());
}

TEST(ProbePlanIr, BackendNamesRoundTrip) {
  ExecBackend backend = ExecBackend::Batched;
  EXPECT_TRUE(backend_from_name("basic", &backend));
  EXPECT_EQ(backend, ExecBackend::Basic);
  EXPECT_TRUE(backend_from_name("batched", &backend));
  EXPECT_EQ(backend, ExecBackend::Batched);
  EXPECT_FALSE(backend_from_name("vectorized", &backend));
  EXPECT_STREQ(backend_name(ExecBackend::Basic), "basic");
  EXPECT_STREQ(backend_name(ExecBackend::Batched), "batched");
}

TEST(ProbePlanIr, BackendFromEnv) {
  // Batched is the default: the backend is bit-identical by contract, so
  // opting *out* is the explicit act.
  ::unsetenv("VOLCAL_BACKEND");
  EXPECT_EQ(backend_from_env(), ExecBackend::Batched);
  ::setenv("VOLCAL_BACKEND", "basic", 1);
  EXPECT_EQ(backend_from_env(), ExecBackend::Basic);
  ::setenv("VOLCAL_BACKEND", "batched", 1);
  EXPECT_EQ(backend_from_env(), ExecBackend::Batched);
  ::unsetenv("VOLCAL_BACKEND");
}

TEST(ProbePlanIr, RegistryPlanSelection) {
  // ball-4's solver IS explore_ball(v, 4) with the ball size as output — the
  // one family whose registration may promise BatchedBall.  Everybody else
  // runs arbitrary solver logic and must stay on IndependentStarts until
  // someone proves their probe structure.
  for (const RegistryEntry* entry : ProblemRegistry::global().match("")) {
    if (entry->name == "ball-4") {
      EXPECT_EQ(entry->plan, ProbePlan::batched_ball(4)) << entry->name;
    } else {
      EXPECT_EQ(entry->plan, ProbePlan::independent()) << entry->name;
    }
  }
}

// --- executor exactness ----------------------------------------------------

struct BallMeters {
  std::int64_t volume = 0;
  std::int64_t distance = 0;
  std::int64_t queries = 0;
};

BallMeters reference_ball(const Graph& g, const IdAssignment& ids, NodeIndex start,
                          std::int64_t radius) {
  ExecutionScratch scratch(g.node_count());
  Execution exec(g, ids, start, /*budget=*/0, scratch);
  explore_ball(exec, radius);
  return {exec.volume(), exec.distance(), exec.query_count()};
}

void expect_executor_matches(const Graph& g, const IdAssignment& ids,
                             const std::vector<NodeIndex>& centers, std::int64_t radius,
                             BatchedBallExecutor& exec) {
  exec.run({centers.data(), centers.size()}, radius);
  for (std::size_t s = 0; s < centers.size(); ++s) {
    const BallMeters ref = reference_ball(g, ids, centers[s], radius);
    EXPECT_EQ(exec.volume(s), ref.volume)
        << "slot " << s << " center " << centers[s] << " r=" << radius;
    EXPECT_EQ(exec.distance(s), ref.distance)
        << "slot " << s << " center " << centers[s] << " r=" << radius;
    EXPECT_EQ(exec.queries(s), ref.queries)
        << "slot " << s << " center " << centers[s] << " r=" << radius;
  }
}

TEST(BatchedBallExecutor, MatchesExploreBallMeters) {
  const auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);  // 255 nodes
  BatchedBallExecutor exec;
  exec.bind(inst.graph);
  std::vector<NodeIndex> centers;
  for (NodeIndex v = 0; v < inst.graph.node_count(); v += 5) centers.push_back(v);
  centers.resize(std::min<std::size_t>(centers.size(), BatchedBallExecutor::kMaxBatch));
  // Radius 0 (the ball is the center), interior radii, and radii deep enough
  // that every ball exhausts the tree — executor reused across runs.
  for (const std::int64_t radius : {0, 1, 4, 7, 16}) {
    expect_executor_matches(inst.graph, inst.ids, centers, radius, exec);
  }
}

TEST(BatchedBallExecutor, DuplicateCentersShareOneSlotEach) {
  const auto inst = make_complete_binary_tree(5, Color::Red, Color::Blue);
  BatchedBallExecutor exec;
  exec.bind(inst.graph);
  const std::vector<NodeIndex> centers = {0, 7, 0, 7, 3};
  expect_executor_matches(inst.graph, inst.ids, centers, 3, exec);
}

TEST(BatchedBallExecutor, CanonicalBallsInstallIntoViewCache) {
  // take_ball must hand back canonical BFS expansions: storing them and
  // re-serving through ViewCache::serve_costs reproduces the meters.
  const auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  BatchedBallExecutor exec;
  exec.bind(inst.graph);
  const std::vector<NodeIndex> centers = {0, 1, 30, 62};
  constexpr std::int64_t kRadius = 3;
  exec.run({centers.data(), centers.size()}, kRadius);

  CacheConfig cfg;
  cfg.policy = CachePolicy::Shared;
  ViewCache cache(cfg);
  cache.bind(inst.graph);
  std::vector<BallMeters> expected;
  for (std::size_t s = 0; s < centers.size(); ++s) {
    expected.push_back({exec.volume(s), exec.distance(s), exec.queries(s)});
    cache.store(centers[s], exec.take_ball(s), cache.epoch(),
                inst.graph.view().storage_identity());
  }
  for (std::size_t s = 0; s < centers.size(); ++s) {
    BallCosts costs;
    ASSERT_TRUE(cache.serve_costs(inst.graph, centers[s], kRadius, &costs))
        << "center " << centers[s];
    EXPECT_EQ(costs.volume, expected[s].volume);
    EXPECT_EQ(costs.distance, expected[s].distance);
    EXPECT_EQ(costs.queries, expected[s].queries);
  }
  // A deeper radius than the stored expansion is a miss, not a wrong answer.
  BallCosts costs;
  EXPECT_FALSE(cache.serve_costs(inst.graph, centers[0], kRadius + 5, &costs));
}

// --- sweep equivalence across the whole registry ---------------------------

TEST(PlannedSweep, BatchedBitIdenticalForEveryFamilyPolicyAndThreadCount) {
  for (const RegistryEntry* entry : ProblemRegistry::global().match("")) {
    const ErasedInstance inst = entry->make(200, /*seed=*/3);
    std::vector<NodeIndex> starts(static_cast<std::size_t>(inst.node_count()));
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      starts[static_cast<std::size_t>(v)] = v;
    }
    const std::span<const NodeIndex> span(starts);
    auto solve = [&](auto& exec) { return inst.solve(exec); };

    CacheConfig off;
    off.policy = CachePolicy::Off;
    ParallelRunner base(1, off);
    base.set_backend(ExecBackend::Basic);
    const auto baseline = base.run_planned(inst.graph(), inst.ids(), span, entry->plan, solve);
    EXPECT_EQ(baseline.stats.backend, ExecBackend::Basic) << entry->name;
    EXPECT_EQ(baseline.stats.plan, entry->plan.kind) << entry->name;

    for (const CachePolicy policy :
         {CachePolicy::Off, CachePolicy::PerStart, CachePolicy::Shared}) {
      for (const int threads : {1, 8}) {
        CacheConfig cfg;
        cfg.policy = policy;
        ParallelRunner runner(threads, cfg);
        runner.set_backend(ExecBackend::Batched);
        const auto run =
            runner.run_planned(inst.graph(), inst.ids(), span, entry->plan, solve);
        const std::string where = entry->name + " / " +
                                  std::string(cache_policy_name(policy)) + " x" +
                                  std::to_string(threads);
        EXPECT_EQ(baseline.output, run.output) << where;
        EXPECT_EQ(baseline.volume, run.volume) << where;
        EXPECT_EQ(baseline.distance, run.distance) << where;
        EXPECT_EQ(baseline.queries, run.queries) << where;
        EXPECT_TRUE(same_costs(baseline.stats, run.stats)) << where;
        EXPECT_EQ(run.stats.plan, entry->plan.kind) << where;
        const ExecBackend expected_backend =
            entry->plan.batchable() ? ExecBackend::Batched : ExecBackend::Basic;
        EXPECT_EQ(run.stats.backend, expected_backend) << where;
        if (entry->plan.batchable()) {
          EXPECT_EQ(run.stats.batch.batched_starts + run.stats.cache.hits,
                    static_cast<std::int64_t>(starts.size()))
              << where;
        }
      }
    }
  }
}

}  // namespace
}  // namespace volcal
