#include "lcl/problems/mis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "labels/generators.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

// Bounded-degree random graph helper (reuses the noise generator's topology).
Graph random_graph(NodeIndex n, int max_degree, std::uint64_t seed,
                   IdAssignment* ids_out) {
  auto inst = make_noise_instance(n, max_degree, seed);
  *ids_out = IdAssignment::shuffled(n, seed + 1);
  return std::move(inst.graph);
}

class MisGraphs
    : public ::testing::TestWithParam<std::tuple<NodeIndex, int, std::uint64_t>> {};

TEST_P(MisGraphs, ProducesValidMis) {
  const auto [n, max_degree, seed] = GetParam();
  IdAssignment ids;
  Graph g = random_graph(n, max_degree, seed, &ids);
  RandomTape tape(ids, seed * 13 + 5);
  auto result = run_at_all_nodes(g, ids, [&](Execution& exec) {
    return static_cast<std::uint8_t>(mis_lca_query(exec, tape) ? 1 : 0);
  });
  EXPECT_TRUE(MisProblem::valid(g, result.output)) << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(satisfies_lemma_2_5(g, result));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MisGraphs,
    ::testing::Combine(::testing::Values<NodeIndex>(50, 200, 1000),
                       ::testing::Values(3, 4), ::testing::Values(1u, 2u, 3u)));

TEST(MisLca, RingMisValid) {
  auto ring = make_ring(257, 3);
  RandomTape tape(ring.ids, 9);
  auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
    return static_cast<std::uint8_t>(mis_lca_query(exec, tape) ? 1 : 0);
  });
  EXPECT_TRUE(MisProblem::valid(ring.graph, result.output));
}

TEST(MisLca, VolumeStaysPolylogarithmic) {
  // The LCA's dependency chains are short whp on bounded-degree graphs; the
  // max volume across nodes should stay well below n and grow slowly.
  std::vector<double> ns, vols;
  for (NodeIndex n : {256, 1024, 4096, 16384}) {
    auto ring = make_ring(n, 7);
    RandomTape tape(ring.ids, 11);
    auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
      return static_cast<std::uint8_t>(mis_lca_query(exec, tape) ? 1 : 0);
    });
    ns.push_back(static_cast<double>(n));
    vols.push_back(static_cast<double>(result.stats.max_volume));
    EXPECT_LT(result.stats.max_volume, 8 * std::log2(static_cast<double>(n))) << n;
  }
}

TEST(MisLca, DeterministicGivenTape) {
  auto ring = make_ring(64, 3);
  RandomTape tape(ring.ids, 21);
  Execution e1(ring.graph, ring.ids, 5);
  Execution e2(ring.graph, ring.ids, 5);
  EXPECT_EQ(mis_lca_query(e1, tape), mis_lca_query(e2, tape));
  EXPECT_EQ(e1.volume(), e2.volume());
}

TEST(MisChecker, RejectsAdjacentMembers) {
  auto ring = make_ring(6, 1);
  std::vector<std::uint8_t> bad(6, 1);
  EXPECT_FALSE(MisProblem::valid(ring.graph, bad));
}

TEST(MisChecker, RejectsUndominatedNode) {
  auto ring = make_ring(6, 1);
  std::vector<std::uint8_t> none(6, 0);
  EXPECT_FALSE(MisProblem::valid(ring.graph, none));
}

TEST(MisChecker, AcceptsAlternatingOnEvenRing) {
  auto ring = make_ring(6, 1);
  std::vector<std::uint8_t> alt{1, 0, 1, 0, 1, 0};
  EXPECT_TRUE(MisProblem::valid(ring.graph, alt));
}

}  // namespace
}  // namespace volcal
