// Consistency sweeps across execution backends and generator determinism:
//   * InstanceSource (cost-metered) and FreeSource (global pass) must drive
//     every solver to identical outputs — the cost meter is an observer, not
//     a participant;
//   * generators are pure functions of their parameters and seed.
#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hh_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"

namespace volcal {
namespace {

TEST(SourceParity, LeafColoringSolvers) {
  auto inst = make_random_full_binary_tree(301, 9);
  RandomTape tape(inst.ids, 4);
  FreeSource<ColoredTreeLabeling> free(inst);
  for (NodeIndex v = 0; v < inst.node_count(); v += 5) {
    free.set_start(v);
    Execution exec(inst.graph, inst.ids, v);
    InstanceSource<ColoredTreeLabeling> paid(inst, exec);
    EXPECT_EQ(leafcoloring_nearest_leaf(free), leafcoloring_nearest_leaf(paid)) << v;
    free.set_start(v);
    Execution exec2(inst.graph, inst.ids, v);
    InstanceSource<ColoredTreeLabeling> paid2(inst, exec2);
    EXPECT_EQ(rw_to_leaf(free, tape), rw_to_leaf(paid2, tape)) << v;
  }
}

TEST(SourceParity, BalancedTreeSolver) {
  auto inst = make_unbalanced_instance(5, 3, 2);
  FreeSource<BalancedTreeLabeling> free(inst);
  for (NodeIndex v = 0; v < inst.node_count(); v += 7) {
    free.set_start(v);
    Execution exec(inst.graph, inst.ids, v);
    InstanceSource<BalancedTreeLabeling> paid(inst, exec);
    EXPECT_EQ(balancedtree_solve(free), balancedtree_solve(paid)) << v;
  }
}

TEST(SourceParity, HybridSolvers) {
  auto inst = make_hybrid_instance(2, 6, 3, 5);
  RandomTape tape(inst.ids, 6);
  auto cfg = HybridConfig::make(2, inst.node_count(), true, &tape);
  FreeSource<HybridLabeling> free(inst);
  for (NodeIndex v = 0; v < inst.node_count(); v += 11) {
    free.set_start(v);
    Execution exec(inst.graph, inst.ids, v);
    InstanceSource<HybridLabeling> paid(inst, exec);
    EXPECT_EQ(hybrid_solve_distance(free, cfg), hybrid_solve_distance(paid, cfg)) << v;
    free.set_start(v);
    Execution exec2(inst.graph, inst.ids, v);
    InstanceSource<HybridLabeling> paid2(inst, exec2);
    EXPECT_EQ(hybrid_solve_volume(free, cfg), hybrid_solve_volume(paid2, cfg)) << v;
  }
}

TEST(SourceParity, HHSolvers) {
  auto inst = make_hh_instance(2, 3, 400, 7);
  auto cfg = HHConfig::make(2, 3, inst.node_count());
  FreeSource<HHLabeling> free(inst);
  for (NodeIndex v = 0; v < inst.node_count(); v += 13) {
    free.set_start(v);
    Execution exec(inst.graph, inst.ids, v);
    InstanceSource<HHLabeling> paid(inst, exec);
    EXPECT_EQ(hh_solve_distance(free, cfg), hh_solve_distance(paid, cfg)) << v;
  }
}

// ---------------------------------------------------------------------------
// Generator determinism
// ---------------------------------------------------------------------------

template <typename Instance>
void expect_instances_identical(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeIndex v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.graph.degree(v), b.graph.degree(v));
    for (Port p = 1; p <= a.graph.degree(v); ++p) {
      ASSERT_EQ(a.graph.neighbor(v, p), b.graph.neighbor(v, p));
    }
    ASSERT_EQ(a.ids.id_of(v), b.ids.id_of(v));
  }
}

TEST(GeneratorDeterminism, SameSeedSameInstance) {
  expect_instances_identical(make_random_full_binary_tree(201, 5),
                             make_random_full_binary_tree(201, 5));
  expect_instances_identical(make_hierarchical_instance(3, 5, 9),
                             make_hierarchical_instance(3, 5, 9));
  expect_instances_identical(make_hybrid_instance(2, 4, 3, 9),
                             make_hybrid_instance(2, 4, 3, 9));
  expect_instances_identical(make_noise_instance(100, 4, 11),
                             make_noise_instance(100, 4, 11));
}

TEST(GeneratorDeterminism, DifferentSeedsDiffer) {
  auto a = make_random_full_binary_tree(201, 5);
  auto b = make_random_full_binary_tree(201, 6);
  bool differs = a.node_count() != b.node_count();
  for (NodeIndex v = 0; !differs && v < std::min(a.node_count(), b.node_count()); ++v) {
    differs |= a.labels.color[v] != b.labels.color[v];
    differs |= a.graph.degree(v) != b.graph.degree(v);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace volcal
