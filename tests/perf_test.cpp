// src/perf/ unit tests: the minimal JSON parser, the canonical artifact
// round-trip (to_json -> parse_json -> from_json), phase timing, and the
// process probes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "perf/artifact.hpp"
#include "perf/json.hpp"
#include "perf/probe.hpp"

namespace volcal::perf {
namespace {

// --- JSON parser -------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  std::string err;
  const JsonValue doc = parse_json(
      R"({"a": 1.5, "b": "x\ny", "c": [true, false, null], "d": {"e": -3}})", &err);
  ASSERT_TRUE(doc.is_object()) << err;
  EXPECT_DOUBLE_EQ(doc.number_at("a", 0.0), 1.5);
  EXPECT_EQ(doc.string_at("b", ""), "x\ny");
  const JsonValue* c = doc.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->items().size(), 3u);
  EXPECT_TRUE(c->items()[0].as_bool(false));
  EXPECT_FALSE(c->items()[1].as_bool(true));
  EXPECT_TRUE(c->items()[2].is_null());
  const JsonValue* d = doc.find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->int_at("e", 0), -3);
}

TEST(Json, RejectsMalformedInput) {
  // The parser signals failure with a Null document plus an error string.
  for (const char* bad : {"{\"a\": }", "[1, 2", "", "{\"a\": 1} trailing"}) {
    std::string err;
    EXPECT_TRUE(parse_json(bad, &err).is_null()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(Json, ParsesScientificNotationAndEscapes) {
  std::string err;
  const JsonValue doc = parse_json(R"({"x": 1e-3, "y": 2.5E2, "s": "\"\\\/\tA"})", &err);
  ASSERT_TRUE(doc.is_object()) << err;
  EXPECT_DOUBLE_EQ(doc.number_at("x", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(doc.number_at("y", 0.0), 250.0);
  EXPECT_EQ(doc.string_at("s", ""), "\"\\/\tA");
}

// --- artifact round-trip ------------------------------------------------------

BenchArtifact sample_artifact() {
  BenchArtifact a;
  a.kind = "bench-family";
  a.tool = "volcal_bench";
  a.family = "leaf-coloring";
  a.title = "LeafColoring (Def. 3.4)";
  a.theta = "D-VOL Th(n)";
  a.algorithm = "nearest-leaf BFS";
  a.env = current_env(4);
  ArtifactCurve c;
  c.name = "volume";
  c.claim = "Θ(n)";
  c.points = {{256, 511, 0.001}, {512, 1023, 0.002}, {1024, 2047, 0.004}};
  c.refit();
  a.curves.push_back(c);
  a.phases = {{"generate", 0.5}, {"sweep", 1.25}};
  a.alloc = {100, 90, 4096, 2048};
  a.alloc_instrumented = true;
  a.rss_high_water_kb = 12345;
  a.total_wall_seconds = 2.0;
  return a;
}

TEST(Artifact, JsonRoundTripPreservesEverything) {
  const BenchArtifact a = sample_artifact();
  std::string err;
  const JsonValue doc = parse_json(a.to_json(), &err);
  ASSERT_TRUE(doc.is_object()) << err;
  auto back = BenchArtifact::from_json(doc, &err);
  ASSERT_TRUE(back.has_value()) << err;

  EXPECT_EQ(back->schema_version, kArtifactSchemaVersion);
  EXPECT_EQ(back->kind, a.kind);
  EXPECT_EQ(back->tool, a.tool);
  EXPECT_EQ(back->family, a.family);
  EXPECT_EQ(back->title, a.title);
  EXPECT_EQ(back->theta, a.theta);
  EXPECT_EQ(back->algorithm, a.algorithm);
  EXPECT_EQ(back->env.git_sha, a.env.git_sha);
  EXPECT_EQ(back->env.compiler, a.env.compiler);
  EXPECT_EQ(back->env.threads, 4);
  ASSERT_EQ(back->curves.size(), 1u);
  const ArtifactCurve& bc = back->curves[0];
  EXPECT_EQ(bc.name, "volume");
  EXPECT_EQ(bc.claim, "Θ(n)");
  EXPECT_EQ(bc.fitted, a.curves[0].fitted);
  // %.17g round-trips doubles exactly.
  EXPECT_EQ(bc.exponent, a.curves[0].exponent);
  EXPECT_EQ(bc.r_squared, a.curves[0].r_squared);
  ASSERT_EQ(bc.points.size(), 3u);
  EXPECT_EQ(bc.points[0].n, 256.0);
  EXPECT_EQ(bc.points[2].cost, 2047.0);
  ASSERT_EQ(back->phases.size(), 2u);
  EXPECT_EQ(back->phases[1].name, "sweep");
  EXPECT_EQ(back->alloc, a.alloc);
  EXPECT_TRUE(back->alloc_instrumented);
  EXPECT_EQ(back->rss_high_water_kb, 12345);
  EXPECT_DOUBLE_EQ(back->total_wall_seconds, 2.0);
}

TEST(Artifact, FromJsonRejectsWrongSchemaAndMissingKeys) {
  std::string err;
  const JsonValue wrong = parse_json(R"({"schema_version": 999, "kind": "bench-report"})", &err);
  ASSERT_TRUE(wrong.is_object());
  EXPECT_FALSE(BenchArtifact::from_json(wrong, &err).has_value());

  const JsonValue missing = parse_json(R"({"kind": "bench-report"})", &err);
  ASSERT_TRUE(missing.is_object());
  EXPECT_FALSE(BenchArtifact::from_json(missing, &err).has_value());
}

TEST(Artifact, FileRoundTrip) {
  const BenchArtifact a = sample_artifact();
  const std::string path = testing::TempDir() + "/volcal_perf_test_artifact.json";
  ASSERT_TRUE(a.write_file(path));
  std::string err;
  auto back = BenchArtifact::load(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->family, "leaf-coloring");
  std::remove(path.c_str());
}

TEST(Artifact, SummaryRoundTripEmbedsFamilies) {
  BenchSummary s;
  s.tool = "volcal_bench";
  s.env = current_env(8);
  s.families.push_back(sample_artifact());
  s.total_wall_seconds = 3.5;
  const std::string path = testing::TempDir() + "/volcal_perf_test_summary.json";
  ASSERT_TRUE(s.write_file(path));
  std::string err;
  auto back = BenchSummary::load(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_EQ(back->families.size(), 1u);
  EXPECT_EQ(back->families[0].family, "leaf-coloring");
  EXPECT_EQ(back->families[0].curves[0].points.size(), 3u);
  EXPECT_EQ(back->env.threads, 8);
  std::remove(path.c_str());
}

TEST(Artifact, RefitMatchesCurveShape) {
  ArtifactCurve linear;
  linear.points = {{256, 256, 0}, {512, 512, 0}, {1024, 1024, 0}, {2048, 2048, 0}};
  linear.refit();
  EXPECT_NEAR(linear.exponent, 1.0, 0.05);
  EXPECT_GT(linear.r_squared, 0.999);

  ArtifactCurve tiny;
  tiny.points = {{256, 1, 0}, {512, 2, 0}};
  tiny.refit();
  EXPECT_EQ(tiny.fitted, "(n/a)");
}

// --- probes ------------------------------------------------------------------

TEST(Probe, PhaseTimerAccumulatesInFirstSeenOrder) {
  PhaseTimer t;
  t.add("generate", 1.0);
  t.add("sweep", 2.0);
  t.add("generate", 0.5);
  ASSERT_EQ(t.phases().size(), 2u);
  EXPECT_EQ(t.phases()[0].name, "generate");
  EXPECT_DOUBLE_EQ(t.phases()[0].wall_seconds, 1.5);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 3.5);

  PhaseTimer other;
  other.add("verify", 0.25);
  other.add("sweep", 1.0);
  t.merge(other);
  ASSERT_EQ(t.phases().size(), 3u);
  EXPECT_DOUBLE_EQ(t.phases()[1].wall_seconds, 3.0);
  EXPECT_EQ(t.phases()[2].name, "verify");
}

TEST(Probe, PhaseScopeRecordsElapsedTime) {
  PhaseTimer t;
  {
    auto s = t.scope("work");
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  }
  ASSERT_EQ(t.phases().size(), 1u);
  EXPECT_GT(t.phases()[0].wall_seconds, 0.0);
}

TEST(Probe, RssHighWaterIsPositiveOnLinux) {
#ifdef __linux__
  EXPECT_GT(rss_high_water_kb(), 0);
#endif
}

TEST(Probe, AllocSnapshotIsMonotone) {
  const AllocStats before = alloc_snapshot();
  const AllocStats after = alloc_snapshot();
  EXPECT_GE(after.allocs, before.allocs);
  EXPECT_GE(after.bytes, before.bytes);
  // Tests do not link volcal_alloc_hook: counters must sit at zero and the
  // artifact must say "not instrumented" rather than claim zero allocations.
  EXPECT_FALSE(alloc_hook_active());
  EXPECT_EQ(before.allocs, 0u);
}

TEST(Probe, AllocDeltaKeepsLaterPeak) {
  const AllocStats a{100, 90, 1000, 700};
  const AllocStats b{40, 30, 400, 500};
  const AllocStats d = a - b;
  EXPECT_EQ(d.allocs, 60u);
  EXPECT_EQ(d.frees, 60u);
  EXPECT_EQ(d.bytes, 600u);
  EXPECT_EQ(d.peak_bytes, 700u);
}

TEST(Probe, EnvFingerprintIsPopulated) {
  const EnvFingerprint env = current_env(3);
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.os.empty());
  EXPECT_FALSE(env.build_type.empty());
  EXPECT_EQ(env.threads, 3);
}

}  // namespace
}  // namespace volcal::perf
