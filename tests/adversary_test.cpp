#include "lcl/adversary/leafcoloring_adversary.hpp"

#include <gtest/gtest.h>

#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

using AdvSrc = LeafColoringAdversarySource;

// The candidate portfolio: the paper's own deterministic strategies, run
// against the adaptive process P of Prop. 3.13.
Color candidate_nearest_leaf(AdvSrc& src) { return leafcoloring_nearest_leaf(src); }
Color candidate_leftmost(AdvSrc& src) { return leafcoloring_leftmost_descent(src); }
Color candidate_lazy(AdvSrc& src) {
  // Reads only its own input.
  return src.color(src.start());
}
Color candidate_sampler(AdvSrc& src) {
  // Probes a few fixed root-to-"depth" paths, then answers with the majority
  // of the colors it saw.
  TreeView<AdvSrc> view(src);
  int red = 0, total = 0;
  for (const Port first : {1, 2}) {
    NodeIndex cur = src.query(src.start(), first);
    for (int step = 0; step < 10; ++step) {
      ++total;
      red += src.color(cur) == Color::Red;
      if (!view.internal(cur)) break;
      cur = view.left(cur);
    }
  }
  return red * 2 >= total ? Color::Red : Color::Blue;
}

class AdversaryDefeats
    : public ::testing::TestWithParam<std::pair<const char*, Color (*)(AdvSrc&)>> {};

TEST_P(AdversaryDefeats, WithinBudgetAlgorithmsFail) {
  const auto& [name, algo] = GetParam();
  const std::int64_t declared_n = 4096;
  auto result = duel_leafcoloring_adversary(algo, declared_n, declared_n / 3);
  if (result.algorithm_exceeded_budget) {
    // Exceeding n/3 nodes is consistent with the Ω(n) bound; nothing to check.
    SUCCEED() << name << " exceeded the budget (used > n/3 volume)";
    return;
  }
  EXPECT_TRUE(result.algorithm_failed) << name;
  // The defeating instance is roughly three nodes per spawned node.
  EXPECT_LE(result.instance_size, 3 * result.nodes_spawned + 2) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Portfolio, AdversaryDefeats,
    ::testing::Values(std::make_pair("nearest_leaf", &candidate_nearest_leaf),
                      std::make_pair("leftmost", &candidate_leftmost),
                      std::make_pair("lazy", &candidate_lazy),
                      std::make_pair("sampler", &candidate_sampler)));

TEST(Adversary, NearestLeafNeverSeesALeafSoBudgetBinds) {
  // Against the adversary, every revealed node looks internal: the BFS
  // strategy keeps spawning until the budget stops it.
  auto result = duel_leafcoloring_adversary(&candidate_nearest_leaf, 4096, 300);
  EXPECT_TRUE(result.algorithm_exceeded_budget);
  EXPECT_GE(result.nodes_spawned, 300);
}

TEST(Adversary, MaterializedInstanceIsWellFormed) {
  // Use a candidate that halts (leftmost/nearest never see a leaf against
  // the adversary and run to the budget).
  auto result = duel_leafcoloring_adversary(&candidate_sampler, 4096, 512);
  ASSERT_FALSE(result.algorithm_exceeded_budget);
  const auto& inst = result.instance;
  // Every explored node is internal; every appended node is a leaf.
  std::int64_t internals = 0, leaves = 0;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    switch (classify(inst.graph, inst.labels.tree, v)) {
      case NodeKind::Internal: ++internals; break;
      case NodeKind::Leaf: ++leaves; break;
      case NodeKind::Inconsistent: FAIL() << "inconsistent node " << v;
    }
  }
  EXPECT_EQ(internals + leaves, inst.node_count());
  EXPECT_EQ(leaves, internals + 1);  // full binary tree
}

TEST(Adversary, HonestUnboundedAlgorithmSolvesTheMaterializedInstance) {
  // Fairness check: the defeating instance is a legitimate LeafColoring
  // input — an unbounded solver handles it.
  auto duel = duel_leafcoloring_adversary(&candidate_sampler, 4096, 512);
  ASSERT_FALSE(duel.algorithm_exceeded_budget);
  const auto& inst = duel.instance;
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&inst](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> src(inst, exec);
    return leafcoloring_nearest_leaf(src);
  });
  LeafColoringProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
}

TEST(Adversary, ParentQueriesReturnSpawner) {
  AdvSrc src(1024, 64);
  const NodeIndex child = src.query(0, 1);
  EXPECT_EQ(src.query(child, 1), 0);   // parent port
  EXPECT_EQ(src.query(0, 1), child);   // re-query returns the same node
  const NodeIndex grand = src.query(child, 2);
  EXPECT_EQ(src.query(grand, 1), child);
  EXPECT_EQ(src.nodes_spawned(), 3);
}

TEST(Adversary, RootHasTwoPortsOthersThree) {
  AdvSrc src(64, 16);
  EXPECT_EQ(src.degree(0), 2);
  EXPECT_EQ(src.parent_port(0), kNoPort);
  const NodeIndex c = src.query(0, 2);
  EXPECT_EQ(src.degree(c), 3);
  EXPECT_EQ(src.parent_port(c), 1);
  EXPECT_THROW(src.query(0, 3), std::out_of_range);
}

}  // namespace
}  // namespace volcal
