// Failure-injection and robustness sweeps: every solver must terminate
// without undefined behavior on corrupted, adversarially-labeled, and
// degenerate inputs (outputs may then be checker-invalid — corruption can
// make instances unsolvable — but never crash, hang, or read unvisited
// state).
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "volcal/runtime.hpp"
#include "util/hash.hpp"

namespace volcal {
namespace {

// Corrupt a fraction of tree-label ports deterministically.
void corrupt_tree(TreeLabeling& t, std::uint64_t seed, double fraction) {
  const NodeIndex n = t.node_count();
  for (NodeIndex v = 0; v < n; ++v) {
    if (to_unit_double(mix64(seed, 0xbad, v)) >= fraction) continue;
    t.parent[v] = static_cast<Port>(mix64(seed, 1, v) % 5);
    t.left[v] = static_cast<Port>(mix64(seed, 2, v) % 5);
    t.right[v] = static_cast<Port>(mix64(seed, 3, v) % 5);
  }
}

class CorruptionSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(CorruptionSweep, LeafColoringSolversTerminate) {
  const auto [fraction, seed] = GetParam();
  auto inst = make_random_full_binary_tree(301, seed);
  corrupt_tree(inst.labels.tree, seed, fraction);
  RandomTape tape(inst.ids, seed);
  const std::int64_t guard = 4 * inst.node_count();
  auto run = run_at_all_nodes(
      inst.graph, inst.ids,
      [&](Execution& exec) {
        InstanceSource<ColoredTreeLabeling> src(inst, exec);
        leafcoloring_nearest_leaf(src);
        return 0;
      },
      guard);
  EXPECT_GE(run.stats.max_volume, 1);
  auto rw = run_at_all_nodes(
      inst.graph, inst.ids,
      [&](Execution& exec) {
        InstanceSource<ColoredTreeLabeling> src(inst, exec);
        rw_to_leaf(src, tape, guard);
        return 0;
      },
      guard);
  EXPECT_GE(rw.stats.max_volume, 1);
}

TEST_P(CorruptionSweep, BalancedTreeSolverTerminates) {
  const auto [fraction, seed] = GetParam();
  auto inst = make_balanced_instance(6);
  corrupt_tree(inst.labels.tree, seed, fraction);
  // Lateral claims get scrambled too.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (to_unit_double(mix64(seed, 0xfee, v)) < fraction) {
      inst.labels.left_nbr[v] = static_cast<Port>(mix64(seed, 4, v) % 6);
      inst.labels.right_nbr[v] = static_cast<Port>(mix64(seed, 5, v) % 6);
    }
  }
  const auto limit =
      static_cast<std::int64_t>(std::ceil(std::log2(inst.node_count()))) + 2;
  auto run = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    InstanceSource<BalancedTreeLabeling> src(inst, exec);
    balancedtree_solve(src, limit);
    return 0;
  });
  EXPECT_GE(run.stats.max_volume, 1);
}

TEST_P(CorruptionSweep, HthcSolverTerminates) {
  const auto [fraction, seed] = GetParam();
  auto inst = make_hierarchical_instance(3, 5, seed);
  corrupt_tree(inst.labels.tree, seed, fraction);
  RandomTape tape(inst.ids, seed + 1);
  for (const bool waypoints : {false, true}) {
    auto cfg = HthcConfig::make(3, inst.node_count(), waypoints, &tape);
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      const ThcColor c = solver.solve_at(v);
      EXPECT_TRUE(c == ThcColor::R || c == ThcColor::B || c == ThcColor::D ||
                  c == ThcColor::X);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, CorruptionSweep,
                         ::testing::Combine(::testing::Values(0.02, 0.1, 0.5, 1.0),
                                            ::testing::Values(1u, 2u)));

TEST(Robustness, HybridSolverOnScrambledLevels) {
  auto inst = make_hybrid_instance(2, 4, 3, 3);
  // Scramble the level inputs: the solver must still terminate.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    inst.labels.level_in[v] = 1 + static_cast<int>(mix64(9, v) % 3);
  }
  auto cfg = HybridConfig::make(2, inst.node_count());
  FreeSource<HybridLabeling> src(inst);
  for (NodeIndex v = 0; v < inst.node_count(); v += 3) {
    src.set_start(v);
    const auto out = hybrid_solve_distance(src, cfg);
    (void)out;
  }
  RandomTape tape(inst.ids, 3);
  auto vcfg = HybridConfig::make(2, inst.node_count(), true, &tape);
  HybridVolumeSolver<FreeSource<HybridLabeling>> solver(src, vcfg);
  for (NodeIndex v = 0; v < inst.node_count(); v += 3) {
    const auto out = solver.solve_at(v);
    (void)out;
  }
  SUCCEED();
}

TEST(Robustness, ExecutionDistanceExactOnTrees) {
  // On forests the explored-subgraph layering equals true graph distance —
  // the Def. 2.1 fidelity claim in DESIGN.md.
  auto inst = make_random_full_binary_tree(201, 5);
  for (NodeIndex v = 0; v < inst.node_count(); v += 17) {
    Execution exec(inst.graph, inst.ids, v);
    explore_ball(exec, 6);
    EXPECT_LE(exec.distance(), 6);
    // The deepest visited node is exactly at BFS distance distance().
    EXPECT_EQ(exec.volume(),
              static_cast<std::int64_t>(ball(inst.graph, v, exec.distance()).size()));
  }
}

TEST(Robustness, TinyInstances) {
  // Smallest legal shapes must work end to end.
  auto tree = make_complete_binary_tree(1, Color::Red, Color::Blue);
  EXPECT_EQ(tree.node_count(), 3);
  auto bal = make_balanced_instance(1);
  EXPECT_EQ(bal.node_count(), 3);
  auto hier = make_hierarchical_instance(1, 1, 1);
  EXPECT_EQ(hier.node_count(), 1);
  auto cfg = HthcConfig::make(1, 1, false, nullptr);
  FreeSource<ColoredTreeLabeling> src(hier);
  HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
  const ThcColor c = solver.solve_at(0);
  EXPECT_TRUE(c == ThcColor::R || c == ThcColor::B);
}

}  // namespace
}  // namespace volcal
