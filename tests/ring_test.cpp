#include "lcl/problems/ring_coloring.hpp"

#include <gtest/gtest.h>

#include "volcal/runtime.hpp"
#include "stats/growth.hpp"

namespace volcal {
namespace {

class RingSizes : public ::testing::TestWithParam<std::tuple<NodeIndex, std::uint64_t>> {};

TEST_P(RingSizes, ColeVishkinProducesProper3Coloring) {
  const auto [n, seed] = GetParam();
  auto ring = make_ring(n, seed);
  auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
    return ring_color_cole_vishkin(ring, exec);
  });
  EXPECT_TRUE(RingColoringProblem::valid(ring.graph, result.output))
      << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(satisfies_lemma_2_5(ring.graph, result));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizes,
                         ::testing::Combine(::testing::Values<NodeIndex>(16, 33, 100, 257,
                                                                         1024, 4097),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(RingColoring, VolumeIsLogStarScale) {
  // Class B landscape point (Figs. 1-2): measured volume stays a small
  // constant-ish value (Θ(log* n) with our fixed-width IDs) across three
  // decades of n.
  std::vector<double> ns, vols;
  for (NodeIndex n : {64, 512, 4096, 32768}) {
    auto ring = make_ring(n, 5);
    Execution exec(ring.graph, ring.ids, 0);
    ring_color_cole_vishkin(ring, exec);
    ns.push_back(static_cast<double>(n));
    vols.push_back(static_cast<double>(exec.volume()));
  }
  // Flat across the sweep: the fitted class must be constant or log*.
  auto fit = stats::classify_growth(ns, vols);
  EXPECT_TRUE(fit.cls == stats::GrowthClass::Constant ||
              fit.cls == stats::GrowthClass::LogStar)
      << fit.label;
  EXPECT_LE(vols.back(), 32.0);
}

TEST(RingColoring, SmallRingStillProper) {
  // Window longer than the ring: wrap-around simulation must stay correct.
  auto ring = make_ring(5, 9);
  auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
    return ring_color_cole_vishkin(ring, exec);
  });
  EXPECT_TRUE(RingColoringProblem::valid(ring.graph, result.output));
}

TEST(TrivialParity, ConstantVolume) {
  auto ring = make_ring(64, 1);
  for (NodeIndex v = 0; v < 64; ++v) EXPECT_EQ(trivial_parity(ring.graph, v), 0);
}

TEST(SinklessOrientation, CheckerSemantics) {
  // A 3-regular-ish gadget: K4.
  Graph::Builder b(4);
  for (NodeIndex i = 0; i < 4; ++i) {
    for (NodeIndex j = i + 1; j < 4; ++j) b.add_edge(i, j);
  }
  Graph g = std::move(b).build();
  std::vector<Port> out(4, 1);
  EXPECT_TRUE(sinkless_orientation_valid(g, out));
  out[2] = 0;  // a sink of degree 3
  EXPECT_FALSE(sinkless_orientation_valid(g, out));
}

TEST(RingCvRounds, MonotoneAndSmall) {
  EXPECT_GT(ring_cv_rounds(1 << 20), 0);
  EXPECT_LE(ring_cv_rounds(1 << 20), 16);
}

}  // namespace
}  // namespace volcal
