#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "labels/generators.hpp"
#include "runtime/execution.hpp"
#include "runtime/randomness.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

Graph path_graph(NodeIndex n) {
  Graph::Builder b(n);
  for (NodeIndex i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// Execution: the query model of Section 2.2
// ---------------------------------------------------------------------------

TEST(Execution, StartCountsAsVolumeOne) {
  Graph g = path_graph(3);
  auto ids = IdAssignment::sequential(3);
  Execution exec(g, ids, 1);
  EXPECT_EQ(exec.volume(), 1);
  EXPECT_EQ(exec.distance(), 0);
  EXPECT_TRUE(exec.visited(1));
  EXPECT_FALSE(exec.visited(0));
}

TEST(Execution, QueryRevealsNeighborAndCharges) {
  Graph g = path_graph(3);
  auto ids = IdAssignment::sequential(3);
  Execution exec(g, ids, 0);
  const NodeIndex u = exec.query(0, 1);
  EXPECT_EQ(u, 1);
  EXPECT_EQ(exec.volume(), 2);
  EXPECT_EQ(exec.distance(), 1);
  EXPECT_EQ(exec.query_count(), 1);
  EXPECT_EQ(exec.id(u), 2u);
  EXPECT_EQ(exec.degree(u), 2);
}

TEST(Execution, QueryFromUnvisitedThrows) {
  Graph g = path_graph(3);
  auto ids = IdAssignment::sequential(3);
  Execution exec(g, ids, 0);
  EXPECT_THROW(exec.query(2, 1), std::logic_error);
  EXPECT_THROW(exec.id(2), std::logic_error);
  EXPECT_THROW(exec.degree(2), std::logic_error);
}

TEST(Execution, RediscoveryIsFree) {
  Graph g = path_graph(3);
  auto ids = IdAssignment::sequential(3);
  Execution exec(g, ids, 0);
  exec.query(0, 1);
  exec.query(0, 1);
  exec.query(1, 1);  // back to 0
  EXPECT_EQ(exec.volume(), 2);
  EXPECT_EQ(exec.query_count(), 3);
}

TEST(Execution, DistanceIsMaxLayer) {
  Graph g = path_graph(5);
  auto ids = IdAssignment::sequential(5);
  Execution exec(g, ids, 0);
  NodeIndex cur = 0;
  for (int i = 0; i < 4; ++i) cur = exec.query(cur, cur == 0 ? 1 : 2);
  EXPECT_EQ(exec.distance(), 4);
  EXPECT_EQ(exec.volume(), 5);
}

TEST(Execution, BudgetEnforced) {
  Graph g = path_graph(10);
  auto ids = IdAssignment::sequential(10);
  Execution exec(g, ids, 0, /*budget=*/3);
  NodeIndex cur = exec.query(0, 1);
  cur = exec.query(cur, 2);
  EXPECT_EQ(exec.volume(), 3);
  EXPECT_THROW(exec.query(cur, 2), QueryBudgetExceeded);
  // Re-discovery stays free even at the budget edge.
  EXPECT_NO_THROW(exec.query(cur, 1));
}

TEST(Execution, ExploreBallMatchesBfsBall) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  Execution exec(inst.graph, inst.ids, 0);
  auto order = explore_ball(exec, 2);
  EXPECT_EQ(order.size(), 7u);  // root + 2 + 4
  EXPECT_EQ(exec.volume(), 7);
  EXPECT_EQ(exec.distance(), 2);
}

TEST(Execution, VisitedNodesList) {
  Graph g = path_graph(4);
  auto ids = IdAssignment::sequential(4);
  Execution exec(g, ids, 0);
  exec.query(0, 1);
  auto nodes = exec.visited_nodes();
  EXPECT_EQ(nodes.size(), 2u);
}

// Lemma 2.5 property: run ball explorations of every radius from every node
// of a bounded-degree graph and check DIST <= VOL <= Δ^DIST + 1.
TEST(Execution, Lemma25SandwichOnBalls) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  for (NodeIndex v = 0; v < inst.node_count(); v += 3) {
    for (std::int64_t r = 0; r <= 4; ++r) {
      Execution exec(inst.graph, inst.ids, v);
      explore_ball(exec, r);
      SweepResult<int> fake;
      fake.volume = {exec.volume()};
      fake.distance = {exec.distance()};
      EXPECT_TRUE(satisfies_lemma_2_5(inst.graph, fake)) << v << " r=" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Randomness (Section 2.2 + §7.4)
// ---------------------------------------------------------------------------

TEST(Randomness, DeterministicPerSeed) {
  auto ids = IdAssignment::sequential(10);
  RandomTape t1(ids, 42), t2(ids, 42), t3(ids, 43);
  bool differs = false;
  for (NodeIndex v = 0; v < 10; ++v) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      EXPECT_EQ(t1.bit(v, v, i), t2.bit(v, v, i));
      differs |= t1.bit(v, v, i) != t3.bit(v, v, i);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Randomness, BitsRoughlyUniform) {
  auto ids = IdAssignment::sequential(64);
  RandomTape tape(ids, 7);
  std::int64_t ones = 0;
  const std::int64_t total = 64 * 64;
  for (NodeIndex v = 0; v < 64; ++v) {
    for (std::uint64_t i = 0; i < 64; ++i) ones += tape.bit(v, v, i);
  }
  EXPECT_GT(ones, total * 2 / 5);
  EXPECT_LT(ones, total * 3 / 5);
}

TEST(Randomness, NodesIndependent) {
  auto ids = IdAssignment::sequential(4);
  RandomTape tape(ids, 9);
  // Different nodes should not share their strings.
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    same += tape.bit(0, 0, i) == tape.bit(1, 1, i);
  }
  EXPECT_NE(same, 64);
}

TEST(Randomness, PublicModelSharesTape) {
  auto ids = IdAssignment::sequential(4);
  RandomTape tape(ids, 9, RandomnessModel::Public);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(tape.bit(0, 0, i), tape.bit(1, 1, i));
    EXPECT_EQ(tape.bit(2, 3, i), tape.bit(1, 1, i));
  }
}

TEST(Randomness, SecretModelForbidsCrossReads) {
  auto ids = IdAssignment::sequential(4);
  RandomTape tape(ids, 9, RandomnessModel::Secret);
  EXPECT_NO_THROW(tape.bit(2, 2, 0));
  EXPECT_THROW(tape.bit(1, 2, 0), std::logic_error);
}

TEST(Randomness, BitAccountingHighWater) {
  auto ids = IdAssignment::sequential(4);
  RandomTape tape(ids, 9);
  EXPECT_EQ(tape.bits_used(1), 0u);
  tape.bit(0, 1, 5);
  EXPECT_EQ(tape.bits_used(1), 6u);
  tape.bit(0, 1, 2);
  EXPECT_EQ(tape.bits_used(1), 6u);
  tape.word(0, 1, 10);
  EXPECT_EQ(tape.bits_used(1), 74u);
  EXPECT_EQ(tape.max_bits_used_anywhere(), 74u);
}

TEST(Randomness, UnitInRange) {
  auto ids = IdAssignment::sequential(8);
  RandomTape tape(ids, 13);
  for (NodeIndex v = 0; v < 8; ++v) {
    const double u = tape.unit(v, v, 0);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---------------------------------------------------------------------------
// distance(): exact on forests, bounded overestimate on pseudo-forests
// ---------------------------------------------------------------------------

// On forests paths are unique, so the max BFS layer in the explored subgraph
// equals the true Def.-2.1 distance cost once the whole tree is explored.
TEST(Execution, DistanceMatchesBfsEccentricityOnForests) {
  auto inst = make_random_full_binary_tree(101, 7);
  for (NodeIndex v = 0; v < inst.node_count(); v += 9) {
    Execution exec(inst.graph, inst.ids, v);
    explore_ball(exec, inst.node_count());
    EXPECT_EQ(exec.volume(), static_cast<std::int64_t>(inst.node_count()));
    EXPECT_EQ(exec.distance(), eccentricity(inst.graph, v)) << "at start " << v;
  }
}

// Layer tightening has no propagation (documented in execution.hpp): when a
// shorter route to an already-visited node is found later, the node's own
// layer tightens but layers derived from the old value do not.  Pin the
// resulting overestimate on a cycle so any semantic change is caught — the
// differential reference in execution_diff_test locks both implementations
// to this exact behavior.
TEST(Execution, DistanceTighteningPinnedOnCycle) {
  // C8 (0-1-...-7-0) plus a pendant node 8 hanging off node 5.
  Graph::Builder b(9);
  for (NodeIndex i = 0; i < 8; ++i) b.add_edge(i, (i + 1) % 8);
  b.add_edge(5, 8);
  Graph g = std::move(b).build();
  auto ids = IdAssignment::sequential(9);

  Execution exec(g, ids, 0);
  // Walk the long way around: 0 -> 1 -> 2 -> 3 -> 4 -> 5 (layers 1..5).
  ASSERT_EQ(exec.query(0, 1), 1);
  for (NodeIndex i = 1; i <= 4; ++i) ASSERT_EQ(exec.query(i, 2), i + 1);
  EXPECT_EQ(exec.distance(), 5);
  // Walk the short way: 0 -> 7 -> 6 -> 5; the last step rediscovers node 5
  // and tightens its layer from 5 to 3...
  ASSERT_EQ(exec.query(0, 2), 7);
  ASSERT_EQ(exec.query(7, 1), 6);
  ASSERT_EQ(exec.query(6, 1), 5);
  // ...so the pendant discovered *through* node 5 lands at layer 4, not 6,
  // and the max layer stays the stale 5 (true eccentricity of node 0 is 4).
  ASSERT_EQ(exec.query(5, 3), 8);
  EXPECT_EQ(exec.distance(), 5);
  EXPECT_EQ(eccentricity(g, 0), 4);
}

// ---------------------------------------------------------------------------
// ExecutionScratch reuse
// ---------------------------------------------------------------------------

TEST(ExecutionScratch, ReuseIsolatesConsecutiveExecutions) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  ExecutionScratch scratch;
  // A full-graph exploration must not leak visited state into the next
  // execution on the same scratch.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    Execution exec(inst.graph, inst.ids, v, /*budget=*/0, scratch);
    EXPECT_EQ(exec.volume(), 1);
    EXPECT_EQ(exec.distance(), 0);
    for (NodeIndex u = 0; u < inst.node_count(); ++u) {
      EXPECT_EQ(exec.visited(u), u == v);
    }
    explore_ball(exec, inst.node_count());
    EXPECT_EQ(exec.volume(), static_cast<std::int64_t>(inst.node_count()));
  }
  EXPECT_EQ(scratch.capacity(), inst.node_count());  // grown once, reused
}

TEST(ExecutionScratch, GrowsAcrossGraphsAndShrinksNever) {
  auto small = make_complete_binary_tree(2, Color::Red, Color::Blue);
  auto big = make_complete_binary_tree(5, Color::Red, Color::Blue);
  ExecutionScratch scratch;
  { Execution exec(small.graph, small.ids, 0, 0, scratch); }
  EXPECT_EQ(scratch.capacity(), small.node_count());
  { Execution exec(big.graph, big.ids, 0, 0, scratch); }
  EXPECT_EQ(scratch.capacity(), big.node_count());
  {
    Execution exec(small.graph, small.ids, 3, 0, scratch);
    EXPECT_FALSE(exec.visited(0));  // stamps from the big run are stale
  }
  EXPECT_EQ(scratch.capacity(), big.node_count());
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

TEST(Runner, AggregatesSupCosts) {
  auto inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  auto result = run_at_all_nodes(inst.graph, inst.ids, [](Execution& exec) {
    explore_ball(exec, 1);
    return 0;
  });
  EXPECT_EQ(result.stats.max_distance, 1);
  EXPECT_EQ(result.stats.max_volume, 4);  // internal node: self + parent + 2 children
  EXPECT_EQ(result.stats.truncated, 0);
  EXPECT_TRUE(satisfies_lemma_2_5(inst.graph, result));
}

TEST(Runner, TruncationCounted) {
  auto inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  auto result = run_at_all_nodes(
      inst.graph, inst.ids,
      [](Execution& exec) {
        explore_ball(exec, 10);  // wants the whole graph
        return 1;
      },
      /*budget=*/4);
  EXPECT_GT(result.stats.truncated, 0);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) EXPECT_LE(result.volume[v], 4);
}

}  // namespace
}  // namespace volcal
