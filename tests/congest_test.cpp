#include "runtime/congest.hpp"

#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/congest_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

// ---------------------------------------------------------------------------
// Simulator mechanics
// ---------------------------------------------------------------------------

TEST(CongestSim, MessageDeliveryNextRound) {
  Graph::Builder b(2);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  CongestSim sim(g, 8);
  std::vector<int> got(2, -1);
  auto step = [&](NodeIndex v, int round, const CongestSim::PortMessages& in)
      -> CongestSim::PortMessages {
    CongestSim::PortMessages out(g.degree(v));
    if (round == 1 && v == 0) out[0] = {1, 0, 1};
    if (!in[0].empty()) got[v] = round;
    return out;
  };
  sim.run(step, [&] { return got[1] != -1; }, 10);
  EXPECT_EQ(got[1], 2);  // sent in round 1, received in round 2
  EXPECT_EQ(got[0], -1);
  EXPECT_EQ(sim.total_bits_sent(), 3);
  EXPECT_EQ(sim.max_message_bits(), 3);
}

TEST(CongestSim, BandwidthEnforced) {
  Graph::Builder b(2);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  CongestSim sim(g, 2);
  auto step = [&](NodeIndex v, int, const CongestSim::PortMessages&)
      -> CongestSim::PortMessages {
    CongestSim::PortMessages out(g.degree(v));
    if (v == 0) out[0] = {1, 1, 1};  // 3 bits > bandwidth 2
    return out;
  };
  EXPECT_THROW(sim.run(step, [] { return false; }, 2), std::logic_error);
}

TEST(CongestSim, StopsAtMaxRounds) {
  Graph::Builder b(2);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  CongestSim sim(g, 8);
  auto step = [&](NodeIndex v, int, const CongestSim::PortMessages&) {
    return CongestSim::PortMessages(g.degree(v));
  };
  EXPECT_EQ(sim.run(step, [] { return false; }, 7), 7);
}

// ---------------------------------------------------------------------------
// Observation 7.4: BalancedTree defect flooding in O(log n) rounds
// ---------------------------------------------------------------------------

TEST(CongestBalancedTree, CleanInstanceNoDefects) {
  auto inst = make_balanced_instance(5);
  auto result = congest_balancedtree_flood(inst, 1, 64);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(result.defect_below[v], 0) << v;
  }
}

class FloodDepths : public ::testing::TestWithParam<int> {};

TEST_P(FloodDepths, DefectReachesAllAncestorsWithinDepthRounds) {
  const int depth = GetParam();
  auto inst = make_unbalanced_instance(depth, depth - 1, 3);
  auto result = congest_balancedtree_flood(inst, 1, 2 * depth + 4);
  // The root must have learned of the defect (it sits at depth <= depth-1).
  EXPECT_EQ(result.defect_below[0], 1);
  // One-bit messages suffice: bandwidth 1 was honored by construction.
  EXPECT_GT(result.stats.total_bits, 0);
}

INSTANTIATE_TEST_SUITE_P(Depths, FloodDepths, ::testing::Values(3, 4, 6, 8));

TEST(CongestBalancedTree, RoundsLinearInDepthNotSize) {
  // Θ(log n) rounds with 1-bit bandwidth: the flood needs ~depth rounds on a
  // tree of 2^depth leaves.
  const int depth = 8;
  auto inst = make_unbalanced_instance(depth, depth - 1, 4);
  auto result = congest_balancedtree_flood(inst, 1, 4 * depth);
  EXPECT_EQ(result.defect_below[0], 1);
  EXPECT_LE(result.stats.rounds, 4 * depth);  // << n = 2^{depth+1}-1
}

// Full Obs.-7.4 solver: flood + local derivation gives a checker-valid
// BalancedTree output in O(depth) rounds.
class BtCongestSolve : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BtCongestSolve, OutputValidOnUnbalancedInstances) {
  auto inst = make_unbalanced_instance(5, 3, GetParam());
  auto result = congest_balancedtree_solve(inst, 1, 64);
  BalancedTreeProblem problem;
  auto verdict = verify_all(problem, inst, result.output);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
  // The root must have located the defect.
  EXPECT_EQ(result.output[0].beta, Balance::Unbalanced);
  EXPECT_NE(result.output[0].p, kNoPort);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtCongestSolve, ::testing::Values(1u, 2u, 3u, 4u));

TEST(BtCongestSolveClean, BalancedInstanceAllBalanced) {
  auto inst = make_balanced_instance(5);
  auto result = congest_balancedtree_solve(inst, 1, 64);
  BalancedTreeProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(result.output[v].beta, Balance::Balanced) << v;
  }
}

TEST(BtCongestSolveClean, AgreesWithQuerySolver) {
  auto inst = make_unbalanced_instance(5, 2, 9);
  auto congest = congest_balancedtree_solve(inst, 1, 64);
  auto query = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    InstanceSource<BalancedTreeLabeling> src(inst, exec);
    return balancedtree_solve(src);
  });
  // Both are valid; the β components must agree (the port witness may differ
  // when both children are defective).
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (!is_consistent(inst.graph, inst.labels.tree, v)) continue;
    EXPECT_EQ(congest.output[v].beta, query.output[v].beta) << v;
  }
}

// ---------------------------------------------------------------------------
// LeafColoring convergecast: CONGEST matches D-DIST, beats D-VOL
// ---------------------------------------------------------------------------

class LeafColoringCongest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeafColoringCongest, SolvesWithOneBitMessages) {
  auto inst = make_random_full_binary_tree(401, GetParam());
  auto result = congest_leafcoloring(inst, 1, 64);
  ASSERT_TRUE(result.all_decided);
  LeafColoringProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafColoringCongest, ::testing::Values(1u, 2u, 3u));

TEST(LeafColoringCongestRounds, TracksDepthNotSize) {
  for (int depth : {6, 8, 10}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    auto result = congest_leafcoloring(inst, 1, 4 * depth);
    ASSERT_TRUE(result.all_decided) << depth;
    EXPECT_LE(result.stats.rounds, depth + 2) << depth;
    LeafColoringProblem problem;
    EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
  }
}

TEST(LeafColoringCongestRounds, CyclePseudotreeHandled) {
  auto inst = make_cycle_pseudotree(10, 3, 5);
  auto result = congest_leafcoloring(inst, 1, 64);
  ASSERT_TRUE(result.all_decided);
  LeafColoringProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
}

// ---------------------------------------------------------------------------
// Example 7.6: query volume O(log n) vs CONGEST rounds Ω(n/B)
// ---------------------------------------------------------------------------

TEST(TwoTree, QueryModelSolvesInLogVolume) {
  const int depth = 6;
  auto gadget = make_two_tree_gadget(depth, 5);
  for (std::size_t i = 0; i < gadget.u_leaves.size(); i += 5) {
    std::int64_t volume = 0;
    const auto bit = query_two_tree_bit(gadget, gadget.u_leaves[i], &volume);
    EXPECT_EQ(bit, gadget.bits[i]) << i;
    EXPECT_LE(volume, 2 * depth + 3) << i;  // O(log n)
  }
}

class TwoTreeBandwidth : public ::testing::TestWithParam<int> {};

TEST_P(TwoTreeBandwidth, RelayDeliversAllBits) {
  const int depth = 5;
  auto gadget = make_two_tree_gadget(depth, 7);
  auto result = congest_two_tree_relay(gadget, GetParam(), 4096);
  ASSERT_TRUE(result.stats.solved);
  for (std::size_t i = 0; i < gadget.bits.size(); ++i) {
    EXPECT_EQ(result.learned[i], gadget.bits[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, TwoTreeBandwidth, ::testing::Values(8, 16, 32, 128));

TEST(TwoTree, RoundsScaleInverselyWithBandwidth) {
  const int depth = 7;  // 128 leaf bits
  auto gadget = make_two_tree_gadget(depth, 9);
  auto narrow = congest_two_tree_relay(gadget, 16, 1 << 14);
  auto wide = congest_two_tree_relay(gadget, 256, 1 << 14);
  ASSERT_TRUE(narrow.stats.solved);
  ASSERT_TRUE(wide.stats.solved);
  // The root edge is the bottleneck: 16x the bandwidth cuts rounds by ~an
  // order of magnitude once n/B dominates the additive depth term.
  EXPECT_GT(narrow.stats.rounds, 2 * wide.stats.rounds);
  // Lower-bound sanity: N index+bit records over the root edge need at least
  // N * record_bits / B rounds.
  const std::int64_t n_bits = static_cast<std::int64_t>(gadget.bits.size());
  EXPECT_GE(narrow.stats.rounds, n_bits * 8 / 16);
}

}  // namespace
}  // namespace volcal
