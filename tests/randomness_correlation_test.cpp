// Regression tests for the random-tape stream semantics (§2.2).
//
// The historical implementation hashed word reads at position 0x9000+i on the
// bit stream, so (a) a word read at position i returned the very hash whose
// LSB is bit 0x9000+i — two nominally independent streams aliased — and (b)
// words at adjacent positions claimed overlapping bit ranges [i, i+63] and
// [i+1, i+64] while returning independent values.  The fix derives bits and
// words from one block stream; these tests pin the contract:
//
//   bit j of word_value(v, i) == bit_value(v, i + j)   for all j in [0, 64)
//
// plus the statistical de-correlation of the old collision positions, and the
// bit-accounting rules (a word consumes its true 64 positions).
#include <gtest/gtest.h>

#include <cstdint>

#include "labels/generators.hpp"
#include "runtime/randomness.hpp"

namespace volcal {
namespace {

class RandomTapeStream : public ::testing::Test {
 protected:
  RandomTapeStream() : inst_(make_complete_binary_tree(4, Color::Red, Color::Blue)) {}

  LeafColoringInstance inst_;
};

TEST_F(RandomTapeStream, WordsAreWindowsOfTheBitStream) {
  const RandomTape tape(inst_.ids, 42);
  for (const NodeIndex v : {NodeIndex{0}, NodeIndex{7}, NodeIndex{30}}) {
    for (const std::uint64_t i : {0ull, 1ull, 17ull, 63ull, 64ull, 200ull, 0x9000ull}) {
      const std::uint64_t w = tape.word_value(v, i);
      for (const std::uint64_t j : {0ull, 1ull, 31ull, 62ull, 63ull}) {
        EXPECT_EQ(((w >> j) & 1) != 0, tape.bit_value(v, i + j))
            << "v=" << v << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST_F(RandomTapeStream, AdjacentWordsOverlapConsistently) {
  // word(i+1) must be word(i) shifted down one bit with bit i+64 on top —
  // the old implementation returned an unrelated hash here.
  const RandomTape tape(inst_.ids, 7);
  for (std::uint64_t i = 0; i < 130; ++i) {
    const std::uint64_t expect = (tape.word_value(0, i) >> 1) |
                                 (static_cast<std::uint64_t>(tape.bit_value(0, i + 64)) << 63);
    EXPECT_EQ(tape.word_value(0, i + 1), expect) << "i=" << i;
  }
}

TEST_F(RandomTapeStream, NoAliasingWithFarBitPositions) {
  // The old collision: word_value(v, i) was the hash of bit position
  // 0x9000+i, so its LSB *equaled* bit_value(v, 0x9000+i) at every i.  After
  // domain separation agreement is a fair coin; 512 trials concentrate near
  // 256 (binomial sd ~11.3), so [150, 362] is a >13-sigma acceptance band.
  const RandomTape tape(inst_.ids, 1);
  int agree = 0;
  for (std::uint64_t i = 0; i < 512; ++i) {
    agree += ((tape.word_value(3, i) & 1) != 0) == tape.bit_value(3, 0x9000 + i);
  }
  EXPECT_GT(agree, 150);
  EXPECT_LT(agree, 362);
}

TEST_F(RandomTapeStream, WordAccountingConsumesItsTruePositions) {
  RandomTape tape(inst_.ids, 9);
  tape.word(2, 2, 10);  // positions 10..73
  EXPECT_EQ(tape.bits_used(2), 74u);
  tape.bit(2, 2, 100);
  EXPECT_EQ(tape.bits_used(2), 101u);
  tape.word(2, 2, 90);  // 90..153 extends past the bit read
  EXPECT_EQ(tape.bits_used(2), 154u);
  EXPECT_EQ(tape.bits_used(3), 0u);
}

TEST_F(RandomTapeStream, ModelsKeepTheirStreamSemantics) {
  const RandomTape priv(inst_.ids, 11, RandomnessModel::Private);
  const RandomTape pub(inst_.ids, 11, RandomnessModel::Public);
  // Public: one global tape, node-independent.
  EXPECT_EQ(pub.word_value(1, 5), pub.word_value(9, 5));
  // Private: distinct nodes get distinct streams (somewhere in 128 bits).
  bool differs = false;
  for (std::uint64_t i = 0; i < 128 && !differs; ++i) {
    differs = priv.bit_value(1, i) != priv.bit_value(2, i);
  }
  EXPECT_TRUE(differs);
  // Secret: cross-node reads rejected, own-node reads fine.
  RandomTape secret(inst_.ids, 11, RandomnessModel::Secret);
  EXPECT_NO_THROW(secret.bit(4, 4, 0));
  EXPECT_THROW(secret.bit(4, 5, 0), std::logic_error);
}

TEST_F(RandomTapeStream, DeterministicInSeedAndSeedSeparated) {
  const RandomTape a(inst_.ids, 123), b(inst_.ids, 123), c(inst_.ids, 124);
  bool differs = false;
  for (std::uint64_t i = 0; i < 192; ++i) {
    EXPECT_EQ(a.bit_value(6, i), b.bit_value(6, i));
    differs = differs || (a.bit_value(6, i) != c.bit_value(6, i));
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace volcal
