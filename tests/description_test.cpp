#include "lcl/description.hpp"

#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"
#include "util/hash.hpp"

namespace volcal {
namespace {

// Label encoder for LeafColoring: input tree claims + χ_in + the output.
NodeLabelFn leafcoloring_label(const LeafColoringInstance& inst,
                               const std::vector<Color>& out) {
  return [&inst, &out](NodeIndex v) {
    std::string s;
    s += 'p' + std::to_string(inst.labels.tree.parent[v]);
    s += 'l' + std::to_string(inst.labels.tree.left[v]);
    s += 'r' + std::to_string(inst.labels.tree.right[v]);
    s += 'c';
    s += color_char(inst.labels.color[v]);
    s += 'o';
    s += color_char(out[v]);
    return s;
  };
}

std::vector<Color> solve(const LeafColoringInstance& inst) {
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&inst](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> src(inst, exec);
    return leafcoloring_nearest_leaf(src);
  });
  return result.output;
}

TEST(BallSignature, CanonicalAcrossIsomorphicPositions) {
  // All leaves of a complete tree at the same depth with the same labels have
  // identical radius-2 signatures.
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  auto out = solve(inst);
  auto label = leafcoloring_label(inst, out);
  const NodeIndex first_leaf = 15;
  // Interior leaves (not the left/rightmost, whose grandparent shape is the
  // same here anyway) share signatures.
  const std::string sig_a = ball_signature(inst.graph, first_leaf + 1, 2, label);
  const std::string sig_b = ball_signature(inst.graph, first_leaf + 5, 2, label);
  EXPECT_EQ(sig_a, sig_b);
}

TEST(BallSignature, DistinguishesLabelChange) {
  auto inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  auto out = solve(inst);
  auto label = leafcoloring_label(inst, out);
  const std::string before = ball_signature(inst.graph, 3, 2, label);
  out[3] = Color::Red;
  auto label2 = leafcoloring_label(inst, out);
  const std::string after = ball_signature(inst.graph, 3, 2, label2);
  EXPECT_NE(before, after);
}

TEST(BallSignature, RadiusZeroIsJustTheNode) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Blue);
  auto out = solve(inst);
  auto label = leafcoloring_label(inst, out);
  const std::string sig = ball_signature(inst.graph, 0, 0, label);
  EXPECT_NE(sig.find("d2"), std::string::npos);
  EXPECT_EQ(sig.find("]["), std::string::npos);  // single node block
}

TEST(DescriptionTable, ConflictDetected) {
  DescriptionTable table;
  table.record("sig-1", true);
  table.record("sig-1", true);  // consistent revisit OK
  EXPECT_THROW(table.record("sig-1", false), std::logic_error);
  EXPECT_EQ(table.stats().entries, 1u);
  EXPECT_EQ(table.stats().records, 2);
}

// The headline test: build LeafColoring's finite description from a corpus of
// instances with valid AND corrupted outputs, then validate fresh instances
// table-first.  No conflicts and no table/direct disagreements means the
// predicate really is a function of the radius-2 ball (Lemma 3.5 executable).
TEST(DescriptionTable, LeafColoringDescriptionConsistent) {
  LeafColoringProblem problem;
  DescriptionTable table;
  const int radius = LeafColoringProblem::radius();

  auto ingest = [&](const LeafColoringInstance& inst, std::vector<Color> out) {
    auto label = leafcoloring_label(inst, out);
    table_check(
        inst.graph, radius, label, table,
        [&](NodeIndex v) { return problem.valid_at(inst, out, v); });
  };

  // Training corpus: valid outputs plus systematic corruptions.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto inst = make_random_full_binary_tree(151, seed);
    auto out = solve(inst);
    ingest(inst, out);
    for (NodeIndex v = 0; v < inst.node_count(); v += 3) {
      auto corrupted = out;
      corrupted[v] = corrupted[v] == Color::Red ? Color::Blue : Color::Red;
      ingest(inst, corrupted);
    }
  }
  const auto trained = table.stats();
  EXPECT_GT(trained.entries, 10u);
  EXPECT_GT(trained.valid_entries, 0);
  EXPECT_LT(trained.valid_entries, static_cast<std::int64_t>(trained.entries));

  // Held-out instances: every signature already present must agree with the
  // direct checker (table_check throws otherwise).
  for (std::uint64_t seed : {7u, 8u}) {
    auto inst = make_random_full_binary_tree(151, seed);
    auto out = solve(inst);
    EXPECT_NO_THROW(ingest(inst, out));
  }
  // The complete tree reuses neighborhoods heavily: few novel signatures.
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  auto out = solve(inst);
  auto label = leafcoloring_label(inst, out);
  const std::int64_t novel =
      table_check(inst.graph, radius, label, table,
                  [&](NodeIndex v) { return problem.valid_at(inst, out, v); });
  EXPECT_LT(novel, inst.node_count() / 4);
}

// Same exercise for BalancedTree at radius 3 (Lemma 4.4 executable).
TEST(DescriptionTable, BalancedTreeDescriptionConsistent) {
  BalancedTreeProblem problem;
  DescriptionTable table;
  const int radius = BalancedTreeProblem::radius();

  auto make_label = [](const BalancedTreeInstance& inst,
                       const std::vector<BtOutput>& out) -> NodeLabelFn {
    return [&inst, &out](NodeIndex v) {
      std::string s;
      s += 'p' + std::to_string(inst.labels.tree.parent[v]);
      s += 'l' + std::to_string(inst.labels.tree.left[v]);
      s += 'r' + std::to_string(inst.labels.tree.right[v]);
      s += 'n' + std::to_string(inst.labels.left_nbr[v]);
      s += 'm' + std::to_string(inst.labels.right_nbr[v]);
      s += out[v].beta == Balance::Balanced ? 'B' : 'U';
      s += std::to_string(out[v].p);
      return s;
    };
  };
  for (std::uint64_t seed : {1u, 2u}) {
    auto inst = make_unbalanced_instance(4, 2, seed);
    auto result = run_at_all_nodes(inst.graph, inst.ids, [&inst](Execution& exec) {
      InstanceSource<BalancedTreeLabeling> src(inst, exec);
      return balancedtree_solve(src);
    });
    auto out = result.output;
    auto label = make_label(inst, out);
    EXPECT_NO_THROW(table_check(
        inst.graph, radius, label, table,
        [&](NodeIndex v) { return problem.valid_at(inst, out, v); }));
    // Corrupt a few outputs too.
    for (NodeIndex v = 0; v < inst.node_count(); v += 5) {
      auto corrupted = out;
      corrupted[v] = {Balance::Unbalanced, static_cast<Port>(mix64(seed, v) % 4)};
      auto clabel = make_label(inst, corrupted);
      EXPECT_NO_THROW(table_check(
          inst.graph, radius, clabel, table,
          [&](NodeIndex v2) { return problem.valid_at(inst, corrupted, v2); }));
    }
  }
  EXPECT_GT(table.stats().entries, 10u);
}

}  // namespace
}  // namespace volcal
