#include "runtime/success.hpp"

#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/leaf_coloring.hpp"

namespace volcal {
namespace {

TEST(SuccessEstimate, UntruncatedWalkAlwaysSucceeds) {
  auto inst = make_random_full_binary_tree(401, 3);
  LeafColoringProblem problem;
  auto est = estimate_success(
      problem, inst,
      [&inst](RandomTape& tape) {
        return [&inst, &tape](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          return rw_to_leaf(src, tape);
        };
      },
      /*trials=*/12);
  EXPECT_EQ(est.successes, est.trials);
  EXPECT_DOUBLE_EQ(est.rate(), 1.0);
  EXPECT_GT(est.max_volume, 0);
}

TEST(SuccessEstimate, TightTruncationFailsOften) {
  auto inst = make_complete_binary_tree(12, Color::Red, Color::Blue);
  LeafColoringProblem problem;
  auto est = estimate_success(
      problem, inst,
      [&inst](RandomTape& tape) {
        return [&inst, &tape](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          return rw_to_leaf(src, tape, /*max_steps=*/6);  // < depth: cannot reach a leaf
        };
      },
      /*trials=*/8);
  EXPECT_EQ(est.successes, 0);
}

TEST(SuccessEstimate, GenerousTruncationRecoversWhp) {
  auto inst = make_complete_binary_tree(10, Color::Red, Color::Blue);
  LeafColoringProblem problem;
  const auto budget = static_cast<std::int64_t>(
      16 * std::log2(static_cast<double>(inst.node_count())));
  auto est = estimate_success(
      problem, inst,
      [&](RandomTape& tape) {
        return [&inst, &tape, budget](Execution& exec) {
          InstanceSource<ColoredTreeLabeling> src(inst, exec);
          return rw_to_leaf(src, tape, budget);
        };
      },
      /*trials=*/16);
  EXPECT_EQ(est.successes, est.trials);  // the Prop. 3.10 whp regime
}

TEST(SuccessEstimate, SeedBaseChangesDraws) {
  auto inst = make_complete_binary_tree(8, Color::Red, Color::Blue);
  LeafColoringProblem problem;
  auto factory = [&inst](RandomTape& tape) {
    return [&inst, &tape](Execution& exec) {
      InstanceSource<ColoredTreeLabeling> src(inst, exec);
      return rw_to_leaf(src, tape);
    };
  };
  auto a = estimate_success(problem, inst, factory, 4, 1);
  auto b = estimate_success(problem, inst, factory, 4, 1);
  EXPECT_EQ(a.max_volume, b.max_volume);  // deterministic in seed base
}

}  // namespace
}  // namespace volcal
