// The harness checking the harness: case generation, the invariant
// predicate, the shrinker and the reproducer format of src/check/.
#include <gtest/gtest.h>

#include <string>

#include "check/check.hpp"
#include "check/fuzz.hpp"
#include "check/repro.hpp"
#include "lcl/registry.hpp"

namespace volcal::check {
namespace {

TEST(GenerateCase, DeterministicAndInBounds) {
  const FuzzCase a = generate_case(7, 42, "leaf-coloring", 4, 600);
  const FuzzCase b = generate_case(7, 42, "leaf-coloring", 4, 600);
  EXPECT_EQ(a, b);
  for (std::uint64_t iter = 0; iter < 200; ++iter) {
    const FuzzCase c = generate_case(7, iter, "hthc-2", 3, 300);
    EXPECT_GE(c.variant, 0);
    EXPECT_LT(c.variant, 3);
    EXPECT_GE(c.n_target, 32);
    EXPECT_LT(c.n_target, 300);
    EXPECT_GE(c.budget, 0);
    EXPECT_LE(c.budget, 64);
    EXPECT_LE(c.start_count, 32);
  }
}

TEST(GenerateCase, FieldsVaryIndependently) {
  // Across a modest window every model, both budget regimes and both
  // start-set regimes must appear — the fuzzer's coverage depends on it.
  bool models[3] = {false, false, false};
  bool unlimited = false, budgeted = false, full = false, sampled = false;
  for (std::uint64_t iter = 0; iter < 64; ++iter) {
    const FuzzCase c = generate_case(1, iter, "hybrid-2", 2, 400);
    models[static_cast<int>(c.model)] = true;
    (c.budget == 0 ? unlimited : budgeted) = true;
    (c.start_count == 0 ? full : sampled) = true;
  }
  EXPECT_TRUE(models[0] && models[1] && models[2]);
  EXPECT_TRUE(unlimited && budgeted && full && sampled);
}

TEST(CheckCase, PassesOnEveryFamilyQuickCases) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    FuzzCase c;
    c.family = entry.name;
    c.n_target = 120;
    c.instance_seed = 5;
    c.start_count = 9;
    const CheckResult r = check_case(c);
    EXPECT_TRUE(r.ok) << entry.name << ": " << r.error;
  }
}

TEST(CheckCase, PassesBudgetedAndFullSweepCase) {
  FuzzCase c;
  c.family = "leaf-coloring";
  c.variant = 1;
  c.n_target = 90;
  c.budget = 9;        // truncates deep starts
  c.start_count = 0;   // whole graph (verifier path is skipped when budgeted)
  c.model = RandomnessModel::Public;
  const CheckResult r = check_case(c);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(CheckCase, RejectsMalformedCases) {
  FuzzCase c;
  c.family = "no-such-family";
  EXPECT_FALSE(check_case(c).ok);
  c.family = "leaf-coloring";
  c.variant = 99;
  const CheckResult r = check_case(c);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("variant"), std::string::npos);
}

TEST(ShrinkCase, MinimizesAgainstAnInjectedPredicate) {
  FuzzCase big;
  big.family = "hthc-2";
  big.variant = 2;
  big.n_target = 512;
  big.model = RandomnessModel::Secret;
  big.budget = 37;
  big.start_count = 20;
  // Synthetic bug: fails whenever the instance is "large enough".
  auto predicate = [](const FuzzCase& c) -> CheckResult {
    if (c.n_target >= 100) return {false, "synthetic: still big"};
    return {};
  };
  const FuzzCase small = shrink_case(big, predicate);
  // Halving stops at the last failing size; every bug-irrelevant field is
  // canonicalized because the failure persists without it.
  EXPECT_GE(small.n_target, 100);
  EXPECT_LT(small.n_target, 200);
  EXPECT_EQ(small.variant, 0);
  EXPECT_EQ(small.model, RandomnessModel::Private);
  EXPECT_EQ(small.budget, 0);
  EXPECT_EQ(small.start_count, 1);
  EXPECT_FALSE(predicate(small).ok);
}

TEST(ShrinkCase, KeepsBugRelevantFields) {
  FuzzCase big;
  big.family = "leaf-coloring";
  big.variant = 3;
  big.n_target = 400;
  big.budget = 21;
  big.start_count = 0;
  // Synthetic bug that needs the variant, a budget and a full sweep.
  auto predicate = [](const FuzzCase& c) -> CheckResult {
    if (c.variant == 3 && c.budget > 0 && c.start_count == 0) {
      return {false, "synthetic: shape+budget+full-sweep bug"};
    }
    return {};
  };
  const FuzzCase small = shrink_case(big, predicate);
  EXPECT_EQ(small.variant, 3);
  EXPECT_EQ(small.budget, 21);
  EXPECT_EQ(small.start_count, 0);
  EXPECT_EQ(small.n_target, 32) << "bug-irrelevant size should shrink to the floor";
}

TEST(Repro, RoundTripsEveryField) {
  FuzzCase c;
  c.family = "hh-2-3";
  c.variant = 1;
  c.n_target = 421;
  c.instance_seed = 6221116673163752301ull;
  c.model = RandomnessModel::Secret;
  c.budget = 40;
  c.start_count = 25;
  c.tape_seed = 11156254489884988039ull;
  const std::string doc = to_repro(c, "sweep: 8-thread outputs diverge");
  FuzzCase parsed;
  std::string error;
  std::string why;
  ASSERT_TRUE(parse_repro(doc, &parsed, &error, &why)) << why;
  EXPECT_EQ(parsed, c);
  EXPECT_EQ(error, "sweep: 8-thread outputs diverge");
}

TEST(Repro, FlattensMultilineErrors) {
  FuzzCase c;
  c.family = "leaf-coloring";
  FuzzCase parsed;
  std::string error;
  ASSERT_TRUE(parse_repro(to_repro(c, "line one\nline two"), &parsed, &error, nullptr));
  EXPECT_EQ(error, "line one line two");
}

TEST(Repro, RejectsMalformedDocuments) {
  FuzzCase out;
  std::string why;
  EXPECT_FALSE(parse_repro("not-a-repro\nfamily x\n", &out, nullptr, &why));
  EXPECT_NE(why.find("header"), std::string::npos);
  EXPECT_FALSE(parse_repro("volcal-fuzz-repro v1\nvariant 0\n", &out, nullptr, &why));
  EXPECT_NE(why.find("family"), std::string::npos);
  EXPECT_FALSE(
      parse_repro("volcal-fuzz-repro v1\nfamily x\nmodel warm\n", &out, nullptr, &why));
  EXPECT_NE(why.find("model"), std::string::npos);
  EXPECT_FALSE(
      parse_repro("volcal-fuzz-repro v1\nfamily x\nvariant twelve\n", &out, nullptr, &why));
}

TEST(Repro, SkipsCommentsAndUnknownKeys) {
  const std::string doc =
      "volcal-fuzz-repro v1\n"
      "# a comment\n"
      "family balanced-tree\n"
      "future_knob 7\n"
      "variant 1\n";
  FuzzCase parsed;
  std::string why;
  ASSERT_TRUE(parse_repro(doc, &parsed, nullptr, &why)) << why;
  EXPECT_EQ(parsed.family, "balanced-tree");
  EXPECT_EQ(parsed.variant, 1);
}

TEST(ModelNames, RoundTrip) {
  for (const RandomnessModel m :
       {RandomnessModel::Private, RandomnessModel::Public, RandomnessModel::Secret}) {
    RandomnessModel back;
    ASSERT_TRUE(model_from_name(model_name(m), &back));
    EXPECT_EQ(back, m);
  }
  RandomnessModel back;
  EXPECT_FALSE(model_from_name("deterministic", &back));
}

TEST(RunFuzz, SmallCleanRunAndFilterErrors) {
  FuzzOptions opts;
  opts.seed = 11;
  opts.iters = 12;
  opts.max_n = 200;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_EQ(report.iters_run, 12);
  EXPECT_TRUE(report.ok());

  FuzzOptions bad;
  bad.family_filter = "zzz-nothing";
  const FuzzReport none = run_fuzz(bad);
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.iters_run, 0);
}

}  // namespace
}  // namespace volcal::check
