// Locality audits (Def. 2.6): each problem's valid_at(v) must be invariant
// under arbitrary mutation of input/output labels *outside* the radius-c
// ball of v.  This is the executable form of Lemmas 3.5, 4.4, 5.8 and 6.2
// ("... is an LCL").
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "labels/generators.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "lcl/problems/hierarchical_thc.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "util/hash.hpp"

namespace volcal {
namespace {

// Set membership helper.
std::vector<char> ball_mask(const Graph& g, NodeIndex center, int radius) {
  std::vector<char> mask(g.node_count(), 0);
  for (NodeIndex v : ball(g, center, radius)) mask[v] = 1;
  return mask;
}

TEST(Locality, LeafColoringRadius2) {
  auto inst = make_random_full_binary_tree(201, 3);
  LeafColoringProblem problem;
  std::vector<Color> out(inst.node_count(), Color::Red);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    out[v] = (mix64(1, v) & 1) ? Color::Red : Color::Blue;
  }
  for (NodeIndex v = 0; v < inst.node_count(); v += 13) {
    const bool before = problem.valid_at(inst, out, v);
    auto mask = ball_mask(inst.graph, v, LeafColoringProblem::radius());
    auto mutated = inst;
    auto mut_out = out;
    for (NodeIndex w = 0; w < inst.node_count(); ++w) {
      if (mask[w]) continue;
      // Scramble everything outside the ball.
      mutated.labels.color[w] = Color::Blue;
      mutated.labels.tree.parent[w] = 3;
      mutated.labels.tree.left[w] = 1;
      mutated.labels.tree.right[w] = 2;
      mut_out[w] = Color::Blue;
    }
    EXPECT_EQ(problem.valid_at(mutated, mut_out, v), before) << v;
  }
}

TEST(Locality, BalancedTreeRadius3) {
  auto inst = make_unbalanced_instance(5, 3, 7);
  BalancedTreeProblem problem;
  // A mixed plausible/garbage output map.
  std::vector<BtOutput> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    out[v] = {(mix64(2, v) & 1) ? Balance::Balanced : Balance::Unbalanced,
              static_cast<Port>(mix64(3, v) % 4)};
  }
  for (NodeIndex v = 0; v < inst.node_count(); v += 7) {
    const bool before = problem.valid_at(inst, out, v);
    auto mask = ball_mask(inst.graph, v, BalancedTreeProblem::radius());
    auto mutated = inst;
    auto mut_out = out;
    for (NodeIndex w = 0; w < inst.node_count(); ++w) {
      if (mask[w]) continue;
      mutated.labels.tree.parent[w] = 2;
      mutated.labels.tree.left[w] = 3;
      mutated.labels.tree.right[w] = 1;
      mutated.labels.left_nbr[w] = 4;
      mutated.labels.right_nbr[w] = 5;
      mut_out[w] = {Balance::Unbalanced, 9};
    }
    EXPECT_EQ(problem.valid_at(mutated, mut_out, v), before) << v;
  }
}

TEST(Locality, HierarchicalThcRadiusOk) {
  const int k = 3;
  auto inst = make_hierarchical_instance(k, 4, 5);
  HierarchicalTHCProblem problem(inst, k);
  const int radius = problem.radius();
  // Build a valid-ish output to probe (all X is wrong but probes both
  // branches); use deterministic pseudo-random symbols.
  std::vector<ThcColor> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    out[v] = static_cast<ThcColor>(mix64(5, v) % 4);
  }
  for (NodeIndex v = 0; v < inst.node_count(); v += 17) {
    const bool before = problem.valid_at(inst, out, v);
    auto mask = ball_mask(inst.graph, v, radius);
    auto mutated = inst;
    auto mut_out = out;
    for (NodeIndex w = 0; w < inst.node_count(); ++w) {
      if (mask[w]) continue;
      mutated.labels.color[w] = Color::Blue;
      mut_out[w] = ThcColor::D;
    }
    // Rebuild the problem on the mutated instance (outside-ball *input*
    // labels changed, which may alter far-away levels but not v's ball).
    HierarchicalTHCProblem mutated_problem(mutated, k);
    EXPECT_EQ(mutated_problem.valid_at(mutated, mut_out, v), before) << v;
  }
}

TEST(Locality, HierarchicalLevelIsLocalFunction) {
  // Obs. 5.3: level(v) is computable from the O(k)-ball; mutating colors far
  // away never changes it (structure mutations inside the RC chain would).
  const int k = 3;
  auto inst = make_hierarchical_instance(k, 4, 6);
  Hierarchy h1(inst.graph, inst.labels.tree, k + 1);
  auto mutated = inst;
  for (NodeIndex w = 0; w < inst.node_count(); ++w) mutated.labels.color[w] = Color::Blue;
  Hierarchy h2(mutated.graph, mutated.labels.tree, k + 1);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(h1.level(v), h2.level(v));
  }
}

}  // namespace
}  // namespace volcal
