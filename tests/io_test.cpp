#define VOLCAL_ALLOW_DIRECT_SERIALIZE_INCLUDE  // exercises the raw text layer
#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/balanced_tree.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

template <typename Instance>
void expect_graphs_equal(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeIndex v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.graph.degree(v), b.graph.degree(v)) << v;
    for (Port p = 1; p <= a.graph.degree(v); ++p) {
      EXPECT_EQ(a.graph.neighbor(v, p), b.graph.neighbor(v, p)) << v << ":" << p;
    }
    EXPECT_EQ(a.ids.id_of(v), b.ids.id_of(v)) << v;
  }
}

TEST(IoRoundTrip, LeafColoring) {
  auto inst = make_random_full_binary_tree(101, 7);
  std::stringstream buf;
  io::write_instance(buf, inst);
  auto back = io::read_leafcoloring(buf);
  expect_graphs_equal(inst, back);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(inst.labels.tree.parent[v], back.labels.tree.parent[v]);
    EXPECT_EQ(inst.labels.tree.left[v], back.labels.tree.left[v]);
    EXPECT_EQ(inst.labels.tree.right[v], back.labels.tree.right[v]);
    EXPECT_EQ(inst.labels.color[v], back.labels.color[v]);
  }
}

TEST(IoRoundTrip, SolverAgreesOnReloadedInstance) {
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  std::stringstream buf;
  io::write_instance(buf, inst);
  auto back = io::read_leafcoloring(buf);
  auto run = [](const LeafColoringInstance& i) {
    return run_at_all_nodes(i.graph, i.ids, [&i](Execution& exec) {
      InstanceSource<ColoredTreeLabeling> src(i, exec);
      return leafcoloring_nearest_leaf(src);
    });
  };
  auto a = run(inst);
  auto b = run(back);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.max_volume, b.stats.max_volume);
}

TEST(IoRoundTrip, BalancedTree) {
  auto inst = make_unbalanced_instance(4, 2, 3);
  std::stringstream buf;
  io::write_instance(buf, inst);
  auto back = io::read_balancedtree(buf);
  expect_graphs_equal(inst, back);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(inst.labels.left_nbr[v], back.labels.left_nbr[v]);
    EXPECT_EQ(inst.labels.right_nbr[v], back.labels.right_nbr[v]);
    EXPECT_EQ(bt_compatible(inst.graph, inst.labels, v),
              bt_compatible(back.graph, back.labels, v))
        << v;
  }
}

TEST(IoRoundTrip, Hybrid) {
  auto inst = make_hybrid_instance(2, 4, 2, 5);
  std::stringstream buf;
  io::write_instance(buf, inst);
  auto back = io::read_hybrid(buf);
  expect_graphs_equal(inst, back);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(inst.labels.level_in[v], back.labels.level_in[v]);
    EXPECT_EQ(inst.labels.color[v], back.labels.color[v]);
  }
}

TEST(IoErrors, BadMagicRejected) {
  std::stringstream buf("nonsense v9 leafcoloring\nn 1\nend\n");
  EXPECT_THROW(io::read_leafcoloring(buf), std::runtime_error);
}

TEST(IoErrors, KindMismatchRejected) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Blue);
  std::stringstream buf;
  io::write_instance(buf, inst);
  EXPECT_THROW(io::read_balancedtree(buf), std::runtime_error);
}

TEST(IoErrors, TruncatedStreamRejected) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Blue);
  std::stringstream buf;
  io::write_instance(buf, inst);
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(io::read_leafcoloring(cut), std::runtime_error);
}

TEST(IoErrors, OutOfRangeNodeRejected) {
  std::stringstream buf(
      "volcal-instance v1 leafcoloring\nn 1\nnode 5 id 1 p 0 lc 0 rc 0 chi R\nend\n");
  EXPECT_THROW(io::read_leafcoloring(buf), std::runtime_error);
}

TEST(Dot, LeafColoringRendersAllParts) {
  auto inst = make_complete_binary_tree(2, Color::Red, Color::Blue);
  const std::string dot = io::to_dot(inst);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // leaves
  EXPECT_NE(dot.find("salmon"), std::string::npos);        // red internals
  EXPECT_NE(dot.find("lightblue"), std::string::npos);     // blue leaves
  EXPECT_NE(dot.find("LC"), std::string::npos);
}

TEST(Dot, MaxNodesTruncates) {
  auto inst = make_complete_binary_tree(5, Color::Red, Color::Blue);
  const std::string small = io::to_dot(inst, 3);
  EXPECT_EQ(small.find("n10 "), std::string::npos);
  EXPECT_NE(small.find("n2 "), std::string::npos);
}

TEST(Dot, BalancedTreeShowsLateralEdges) {
  auto inst = make_balanced_instance(2);
  const std::string dot = io::to_dot(inst);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace volcal
