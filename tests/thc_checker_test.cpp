// Per-condition coverage of the Def. 5.5 validity engine
// (thc_conditions_hold): each numbered condition is exercised positively and
// negatively by surgically mutating a known-valid output.
#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/hierarchical_thc.hpp"

namespace volcal {
namespace {

struct Fixture {
  HierarchicalInstance inst;
  int k;
  Hierarchy h;
  std::vector<ThcColor> valid;

  Fixture(int k_in, NodeIndex b, std::uint64_t seed)
      : inst(make_hierarchical_instance(k_in, b, seed)),
        k(k_in),
        h(inst.graph, inst.labels.tree, k_in + 1) {
    auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
    FreeSource<ColoredTreeLabeling> src(inst);
    HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
    valid.resize(inst.node_count());
    for (NodeIndex v = 0; v < inst.node_count(); ++v) valid[v] = solver.solve_at(v);
  }

  bool check(const std::vector<ThcColor>& out, NodeIndex v) const {
    HierarchicalTHCProblem problem(inst, k);
    return problem.valid_at(inst, out, v);
  }

  NodeIndex find(int level, bool leaf, bool root) const {
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      if (h.level(v) == level && h.is_level_leaf(v) == leaf && h.is_level_root(v) == root) {
        return v;
      }
    }
    return kNoNode;
  }
};

TEST(ThcConditions, BaseOutputIsValidEverywhere) {
  Fixture fx(3, 4, 1);
  HierarchicalTHCProblem problem(fx.inst, fx.k);
  EXPECT_TRUE(verify_all(problem, fx.inst, fx.valid).ok);
}

// Condition 1: nodes above level k must output X.
TEST(ThcConditions, Condition1ExemptAboveK) {
  // Build depth-3 structure but check against k = 2: level-3 nodes are
  // outside the hierarchy.
  auto inst = make_hierarchical_instance(3, 4, 2);
  HierarchicalTHCProblem problem(inst, 2);
  Hierarchy h(inst.graph, inst.labels.tree, 3);
  auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
  FreeSource<ColoredTreeLabeling> src(inst);
  HthcSolver<FreeSource<ColoredTreeLabeling>> solver(src, cfg);
  std::vector<ThcColor> out(inst.node_count());
  NodeIndex above = kNoNode;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    out[v] = solver.solve_at(v);
    if (!h.in_hierarchy(v)) above = v;
  }
  ASSERT_NE(above, kNoNode);
  ASSERT_TRUE(problem.valid_at(inst, out, above));
  for (ThcColor wrong : {ThcColor::R, ThcColor::B, ThcColor::D}) {
    auto mutated = out;
    mutated[above] = wrong;
    EXPECT_FALSE(problem.valid_at(inst, mutated, above)) << thc_char(wrong);
  }
}

// Condition 2: a level leaf may echo χ_in, decline, or go exempt — but not
// emit the opposite color.
TEST(ThcConditions, Condition2LeafAlternatives) {
  Fixture fx(3, 4, 3);
  const NodeIndex leaf = fx.find(2, /*leaf=*/true, /*root=*/false);
  ASSERT_NE(leaf, kNoNode);
  auto out = fx.valid;
  out[leaf] = to_thc(fx.inst.labels.color[leaf]);
  EXPECT_TRUE(fx.check(out, leaf));
  out[leaf] = ThcColor::D;
  EXPECT_TRUE(fx.check(out, leaf));
  out[leaf] = ThcColor::X;
  EXPECT_TRUE(fx.check(out, leaf));  // mid-level leaf exemption is free
  const ThcColor anti =
      fx.inst.labels.color[leaf] == Color::Red ? ThcColor::B : ThcColor::R;
  out[leaf] = anti;
  EXPECT_FALSE(fx.check(out, leaf));
}

// Condition 3: level-1 nodes are confined to {R,B,D} with strict unanimity.
TEST(ThcConditions, Condition3Level1) {
  Fixture fx(2, 5, 4);
  const NodeIndex v = fx.find(1, false, true);
  ASSERT_NE(v, kNoNode);
  auto out = fx.valid;
  out[v] = ThcColor::X;
  EXPECT_FALSE(fx.check(out, v));  // 3(a)
  out[v] = fx.valid[v];
  // 3(b): disagree with the backbone successor.
  const NodeIndex next = fx.h.backbone_next(v);
  ASSERT_NE(next, kNoNode);
  out[v] = fx.valid[next] == ThcColor::R ? ThcColor::B : ThcColor::R;
  EXPECT_FALSE(fx.check(out, v));
  // Unanimous decline of the whole level-1 component is valid.
  out = fx.valid;
  const auto bb = fx.h.backbone_of(v);
  for (NodeIndex w : fx.h.backbones()[static_cast<std::size_t>(bb)].nodes) {
    out[w] = ThcColor::D;
  }
  for (NodeIndex w : fx.h.backbones()[static_cast<std::size_t>(bb)].nodes) {
    EXPECT_TRUE(fx.check(out, w)) << w;
  }
}

// Condition 4: mid-level non-leaves need (a) agreement, (b) certified
// exemption, or (c) echo/decline under an exempt successor.
TEST(ThcConditions, Condition4MidLevel) {
  Fixture fx(3, 4, 5);
  const NodeIndex v = fx.find(2, false, true);
  ASSERT_NE(v, kNoNode);
  const NodeIndex next = fx.h.backbone_next(v);
  const NodeIndex down = fx.h.down(v);
  ASSERT_NE(next, kNoNode);
  ASSERT_NE(down, kNoNode);

  // 4(b): X valid only while the down component certifies.
  auto out = fx.valid;
  out[v] = ThcColor::X;
  out[down] = ThcColor::R;
  EXPECT_TRUE(fx.check(out, v));
  out[down] = ThcColor::D;
  EXPECT_FALSE(fx.check(out, v));

  // 4(c): under an exempt successor, echo χ_in or decline.
  out = fx.valid;
  out[next] = ThcColor::X;
  out[v] = to_thc(fx.inst.labels.color[v]);
  EXPECT_TRUE(fx.check(out, v));
  out[v] = ThcColor::D;
  EXPECT_TRUE(fx.check(out, v));
  out[v] = fx.inst.labels.color[v] == Color::Red ? ThcColor::B : ThcColor::R;
  EXPECT_FALSE(fx.check(out, v));

  // 4(a): unanimity with the successor.
  out = fx.valid;
  out[v] = ThcColor::D;
  out[next] = ThcColor::D;
  EXPECT_TRUE(fx.check(out, v));
  out[next] = ThcColor::R;
  out[v] = ThcColor::B;
  EXPECT_FALSE(fx.check(out, v));
}

// Condition 5: level-k nodes never decline; X needs a certificate; colors
// pass through or restart from χ_in across an exemption.
TEST(ThcConditions, Condition5TopLevel) {
  Fixture fx(2, 6, 6);
  const NodeIndex v = fx.find(2, false, true);
  ASSERT_NE(v, kNoNode);
  const NodeIndex next = fx.h.backbone_next(v);
  const NodeIndex down = fx.h.down(v);
  ASSERT_NE(next, kNoNode);
  ASSERT_NE(down, kNoNode);

  auto out = fx.valid;
  out[v] = ThcColor::D;
  EXPECT_FALSE(fx.check(out, v));  // D forbidden at level k

  // 5(a): exemption gated by the certificate.
  out = fx.valid;
  out[v] = ThcColor::X;
  out[down] = ThcColor::B;
  EXPECT_TRUE(fx.check(out, v));
  out[down] = ThcColor::D;
  EXPECT_FALSE(fx.check(out, v));

  // 5(b): color continues through a non-exempt successor...
  out = fx.valid;
  out[down] = ThcColor::B;  // keep any exemption certified
  out[v] = ThcColor::R;
  out[next] = ThcColor::R;
  EXPECT_TRUE(fx.check(out, v));
  out[next] = ThcColor::B;
  EXPECT_FALSE(fx.check(out, v));
  // ...and restarts from χ_in across an exempt successor.
  out[next] = ThcColor::X;
  out[v] = to_thc(fx.inst.labels.color[v]);
  EXPECT_TRUE(fx.check(out, v));
  out[v] = fx.inst.labels.color[v] == Color::Red ? ThcColor::B : ThcColor::R;
  EXPECT_FALSE(fx.check(out, v));
}

}  // namespace
}  // namespace volcal
