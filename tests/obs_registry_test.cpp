// MetricsRegistry (src/obs/registry.hpp): the named-metrics layer under the
// serving stack's Stats snapshots.
//
// The load-bearing property is shard-merge determinism: Counter and Histogram
// spread bumps over per-thread atomic shards so the query hot path never
// contends on a shared cache line, and every shard field is an
// order-independent reduction (sum, min, max).  A snapshot taken after N adds
// must therefore read the same totals whether the adds came from 1 thread or
// 8 — otherwise two Stats polls of an idle server could disagree, and the
// final --stats-log line could never reconcile with the run artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace volcal::obs {
namespace {

// Deterministic value multiset shared by the 1-thread and 8-thread runs:
// values across many buckets, including the v <= 0 edge bucket.
std::vector<std::int64_t> sample_values() {
  std::vector<std::int64_t> values;
  for (std::int64_t i = 0; i < 4096; ++i) {
    values.push_back((i * 2654435761u) % 100000 - 50);
  }
  return values;
}

TEST(Counter, ShardedIncrementsSumExactlyAcrossThreads) {
  const int kThreads = 8;
  const std::int64_t kPerThread = 10000;

  Counter serial;
  for (std::int64_t i = 0; i < kThreads * kPerThread; ++i) serial.inc();

  Counter sharded;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::int64_t i = 0; i < kPerThread; ++i) sharded.inc();
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(serial.value(), kThreads * kPerThread);
  EXPECT_EQ(sharded.value(), serial.value());
}

TEST(Counter, DeltaIncrementsAndNegativeDeltasSum) {
  Counter c;
  c.inc(5);
  c.inc(-2);
  c.inc(0);
  EXPECT_EQ(c.value(), 3);
}

TEST(Histogram, BucketOfMatchesBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(-100), 0);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(INT64_MAX), 63);
}

// The ISSUE's determinism pin: the same value multiset added from 1 thread
// and from 8 threads must produce snapshot-equal histograms — buckets,
// count, sum, min, and max all identical.
TEST(Histogram, ShardMergeIsDeterministicOneThreadVsEight) {
  const std::vector<std::int64_t> values = sample_values();

  Histogram one;
  for (const std::int64_t v : values) one.add(v);

  Histogram eight;
  const int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Strided partition: each thread adds a different subset, the union is
      // the full multiset.
      for (std::size_t i = static_cast<std::size_t>(t); i < values.size();
           i += kThreads) {
        eight.add(values[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  const HistogramSnapshot a = one.snapshot();
  const HistogramSnapshot b = eight.snapshot();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count, static_cast<std::int64_t>(values.size()));

  std::int64_t expected_sum = 0, expected_min = INT64_MAX, expected_max = INT64_MIN;
  for (const std::int64_t v : values) {
    expected_sum += v;
    expected_min = std::min(expected_min, v);
    expected_max = std::max(expected_max, v);
  }
  EXPECT_EQ(a.sum, expected_sum);
  EXPECT_EQ(a.min, expected_min);
  EXPECT_EQ(a.max, expected_max);
}

TEST(Histogram, EmptySnapshotIsZeroed) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  for (const std::int64_t b : s.buckets) EXPECT_EQ(b, 0);
}

TEST(Histogram, ApproxQuantileResolvesToUpperBucketBounds) {
  Histogram h;
  // 90 values in bucket 1 (value 1), 10 in bucket 7 (64..127 -> here 100).
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(100);
  const HistogramSnapshot s = h.snapshot();
  // p50 lands in bucket 1, whose upper bound is (1<<1)-1 = 1 (exact here).
  EXPECT_EQ(s.approx_quantile(0.50), 1);
  // p99 lands in bucket 7: upper bound (1<<7)-1 = 127, a <= 2x overestimate.
  EXPECT_EQ(s.approx_quantile(0.99), 127);
  // Quantiles of an empty histogram are 0, not UB.
  EXPECT_EQ(HistogramSnapshot{}.approx_quantile(0.99), 0);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("serve.accepted");
  Counter* c2 = reg.counter("serve.accepted");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.gauge("serve.depth");
  Gauge* g2 = reg.gauge("serve.depth");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.histogram("serve.latency_us");
  Histogram* h2 = reg.histogram("serve.latency_us");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistry, SnapshotIteratesInNameOrderAndRendersDeterministicJson) {
  MetricsRegistry reg;
  // Register out of order; snapshots must come back sorted by name.
  reg.counter("zeta")->inc(3);
  reg.counter("alpha")->inc(1);
  reg.gauge("mid")->set(7);
  reg.histogram("hist")->add(5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  EXPECT_EQ(snap.counter("alpha"), 1);
  EXPECT_EQ(snap.counter("zeta"), 3);
  EXPECT_EQ(snap.counter("missing", -1), -1);
  EXPECT_EQ(snap.gauge("mid"), 7);

  // Two snapshots of unchanged state render byte-identical JSON.
  EXPECT_EQ(reg.snapshot().to_json(), snap.to_json());
  // And the JSON carries the expected shape markers.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
}

TEST(MetricsRegistry, GaugeFnIsEvaluatedAtSnapshotTimeAndWinsOverOwnedGauge) {
  MetricsRegistry reg;
  std::int64_t live = 10;
  reg.gauge_fn("depth", [&] { return live; });
  EXPECT_EQ(reg.snapshot().gauge("depth"), 10);
  live = 42;  // no re-registration — the callback reads the live value
  EXPECT_EQ(reg.snapshot().gauge("depth"), 42);

  // A callback registered under an owned gauge's name shadows it (the
  // transport re-points serve.connections at stop() this way).
  reg.gauge("shadow")->set(1);
  reg.gauge_fn("shadow", [] { return std::int64_t{99}; });
  EXPECT_EQ(reg.snapshot().gauge("shadow"), 99);
  // Re-registering replaces the callback.
  reg.gauge_fn("shadow", [] { return std::int64_t{0}; });
  EXPECT_EQ(reg.snapshot().gauge("shadow"), 0);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndBumpingIsSafe) {
  MetricsRegistry reg;
  const int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Every thread registers the same names and bumps through the handle it
      // got back — idempotent registration must hand all of them the same
      // metric.
      Counter* c = reg.counter("shared.counter");
      Histogram* h = reg.histogram("shared.hist");
      for (int i = 0; i < 1000; ++i) {
        c->inc();
        h->add(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("shared.counter"), kThreads * 1000);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, kThreads * 1000);
  EXPECT_EQ(snap.histograms[0].second.min, 0);
  EXPECT_EQ(snap.histograms[0].second.max, 999);
}

TEST(MetricsRegistry, GlobalIsAProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
  // The sweep engine folds here (sweep.runs etc.); registering a test-local
  // name must not disturb anything.
  Counter* c = MetricsRegistry::global().counter("test.obs_registry.probe");
  c->inc();
  EXPECT_GE(MetricsRegistry::global().snapshot().counter("test.obs_registry.probe"),
            1);
}

}  // namespace
}  // namespace volcal::obs
