// perf/diff.hpp policy tests: cost-curve drift is always a hard failure,
// wall time gets the configurable tolerance, and attribution/notes behave.
#include <gtest/gtest.h>

#include <string>

#include "perf/artifact.hpp"
#include "perf/diff.hpp"

namespace volcal::perf {
namespace {

BenchArtifact family_artifact(const std::string& name) {
  BenchArtifact a;
  a.kind = "bench-family";
  a.tool = "volcal_bench";
  a.family = name;
  a.env = current_env(8);
  ArtifactCurve vol;
  vol.name = "volume";
  vol.points = {{256, 511, 0.010}, {512, 1023, 0.020}, {1024, 2047, 0.040}};
  vol.refit();
  ArtifactCurve dist;
  dist.name = "distance";
  dist.points = {{256, 8, 0.0}, {512, 9, 0.0}, {1024, 10, 0.0}};
  dist.refit();
  a.curves = {vol, dist};
  a.phases = {{"generate", 0.01}, {"sweep", 0.07}};
  a.total_wall_seconds = 0.08;
  return a;
}

DiffResult run_diff(const std::vector<BenchArtifact>& base,
                    const std::vector<BenchArtifact>& cand, DiffOptions opt = {}) {
  return diff_artifact_sets(base, cand, opt);
}

TEST(BenchDiff, SelfDiffIsClean) {
  const auto base = {family_artifact("leaf-coloring"), family_artifact("balanced-tree")};
  const DiffResult r = run_diff(base, base);
  EXPECT_TRUE(r.ok()) << r.render();
  EXPECT_TRUE(r.findings.empty()) << r.render();
}

TEST(BenchDiff, InjectedCostDriftIsHardFailure) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].curves[0].points[1].cost += 1;  // one count off at one n
  const DiffResult r = run_diff(base, cand);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.findings.empty());
  bool saw_hard = false;
  for (const DiffFinding& f : r.findings) {
    saw_hard |= f.severity == DiffFinding::Severity::Hard;
  }
  EXPECT_TRUE(saw_hard) << r.render();
  // --ignore-wall must NOT forgive cost drift.
  DiffOptions lax;
  lax.ignore_wall = true;
  EXPECT_FALSE(run_diff(base, cand, lax).ok());
}

TEST(BenchDiff, FittedClassChangeIsHardFailure) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].curves[0].fitted = "Θ(n log n)";
  EXPECT_FALSE(run_diff(base, cand).ok());
}

TEST(BenchDiff, ExponentDriftBeyondEpsilonIsHardFailure) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].curves[0].exponent += 1e-3;
  EXPECT_FALSE(run_diff(base, cand).ok());
  // Last-ulp drift (cross-libm) stays inside the epsilon.
  auto ulp = base;
  ulp[0].curves[0].exponent += 1e-9;
  ulp[0].curves[0].r_squared -= 1e-9;
  EXPECT_TRUE(run_diff(base, ulp).ok());
}

TEST(BenchDiff, WallRegressionBeyondToleranceFails) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].total_wall_seconds = base[0].total_wall_seconds * 1.30;  // +30% > 10%
  cand[0].phases[1].wall_seconds *= 1.4;
  const DiffResult r = run_diff(base, cand);
  EXPECT_FALSE(r.ok());
  bool saw_wall = false, saw_hard = false, saw_attribution = false;
  for (const DiffFinding& f : r.findings) {
    saw_wall |= f.severity == DiffFinding::Severity::Wall;
    saw_hard |= f.severity == DiffFinding::Severity::Hard;
    saw_attribution |= f.what.find("where it went") != std::string::npos;
  }
  EXPECT_TRUE(saw_wall) << r.render();
  EXPECT_FALSE(saw_hard) << r.render();  // wall noise is never a hard failure
  EXPECT_TRUE(saw_attribution) << r.render();

  // The same regression passes under --ignore-wall (the CI gate's mode) and
  // under a wider tolerance.
  DiffOptions lax;
  lax.ignore_wall = true;
  EXPECT_TRUE(run_diff(base, cand, lax).ok());
  DiffOptions wide;
  wide.wall_tolerance = 0.50;
  EXPECT_TRUE(run_diff(base, cand, wide).ok());
}

TEST(BenchDiff, WallJitterWithinTolerancePasses) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].total_wall_seconds = base[0].total_wall_seconds * 1.08;  // +8% < 10%
  const DiffResult r = run_diff(base, cand);
  EXPECT_TRUE(r.ok()) << r.render();
}

TEST(BenchDiff, SubFloorWallIsNeverGated) {
  auto base_art = family_artifact("leaf-coloring");
  base_art.total_wall_seconds = 0.001;  // below the 5ms floor
  auto cand_art = base_art;
  cand_art.total_wall_seconds = 0.004;  // 4x slower but scheduler-scale
  EXPECT_TRUE(run_diff({base_art}, {cand_art}).ok());
}

TEST(BenchDiff, MissingFamilyIsHardNewFamilyIsNote) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring"),
                                           family_artifact("balanced-tree")};
  const std::vector<BenchArtifact> cand = {family_artifact("leaf-coloring"),
                                           family_artifact("hthc-2")};
  const DiffResult r = run_diff(base, cand);
  EXPECT_FALSE(r.ok());
  bool missing_is_hard = false, new_is_note = false;
  for (const DiffFinding& f : r.findings) {
    if (f.artifact == "balanced-tree") {
      missing_is_hard |= f.severity == DiffFinding::Severity::Hard;
    }
    if (f.artifact == "hthc-2") {
      new_is_note |= f.severity == DiffFinding::Severity::Note;
    }
  }
  EXPECT_TRUE(missing_is_hard) << r.render();
  EXPECT_TRUE(new_is_note) << r.render();
}

TEST(BenchDiff, MissingCurveIsHardFailure) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].curves.pop_back();
  EXPECT_FALSE(run_diff(base, cand).ok());
}

TEST(BenchDiff, PointCountOrNDriftIsHardFailure) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto fewer = base;
  fewer[0].curves[0].points.pop_back();
  EXPECT_FALSE(run_diff(base, fewer).ok());

  auto shifted = base;
  shifted[0].curves[0].points[0].n = 257;  // instance shape drift
  EXPECT_FALSE(run_diff(base, shifted).ok());
}

TEST(BenchDiff, EnvDifferencesAreNotesOnly) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].env.threads = 2;
  cand[0].env.compiler = "clang 17.0.0";
  const DiffResult r = run_diff(base, cand);
  EXPECT_TRUE(r.ok()) << r.render();
  EXPECT_FALSE(r.findings.empty());  // reported, never gated
}

TEST(BenchDiff, RenderVerdictLine) {
  const std::vector<BenchArtifact> base = {family_artifact("leaf-coloring")};
  auto cand = base;
  cand[0].curves[0].points[0].cost += 5;
  const DiffResult r = run_diff(base, cand);
  EXPECT_NE(r.render().find("REGRESSION"), std::string::npos);
  const DiffResult ok = run_diff(base, base);
  EXPECT_NE(ok.render().find("OK"), std::string::npos);
}

}  // namespace
}  // namespace volcal::perf
