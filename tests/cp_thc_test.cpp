// Remark 5.7 executable: the Chang-Pettie-flavored variant (proper colors +
// mandatory exemption) versus the paper's relaxed Hierarchical-THC.
#include "lcl/problems/cp_thc.hpp"

#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/local_view.hpp"

namespace volcal {
namespace {

using Free = FreeSource<ColoredTreeLabeling>;

std::vector<ThcColor> cp_outputs(const HierarchicalInstance& inst, const HthcConfig& cfg) {
  Free src(inst);
  CpSolver<Free> solver(src, cfg);
  std::vector<ThcColor> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) out[v] = solver.solve_at(v);
  return out;
}

struct CpParam {
  int k;
  NodeIndex backbone;
  std::uint64_t seed;
};

class CpSolve : public ::testing::TestWithParam<CpParam> {};

TEST_P(CpSolve, DeterministicSolverValidOnBalancedFamily) {
  const auto [k, b, seed] = GetParam();
  auto inst = make_hierarchical_instance(k, b, seed);
  auto cfg = HthcConfig::make(k, inst.node_count(), false, nullptr);
  auto out = cp_outputs(inst, cfg);
  CpTHCProblem problem(inst, k);
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CpSolve,
                         ::testing::Values(CpParam{2, 5, 1}, CpParam{2, 9, 2},
                                           CpParam{3, 4, 3}, CpParam{3, 6, 4},
                                           CpParam{4, 3, 5}));

TEST(CpSolve, CycleBackbonesDeclineOrExempt) {
  auto inst = make_hierarchical_cycle_instance(2, 7, 4, 3);
  auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
  auto out = cp_outputs(inst, cfg);
  CpTHCProblem problem(inst, 2);
  EXPECT_TRUE(verify_all(problem, inst, out).ok);
  // The cycle nodes all certify (their level-1 components are shallow), so
  // mandatory exemption puts every cycle node at X.
  for (NodeIndex v = 0; v < 7; ++v) EXPECT_EQ(out[v], ThcColor::X) << v;
}

TEST(CpChecker, ProperColoringEnforced) {
  auto inst = make_hierarchical_instance(1, 6, 7);
  auto cfg = HthcConfig::make(1, inst.node_count(), false, nullptr);
  auto out = cp_outputs(inst, cfg);
  CpTHCProblem problem(inst, 1);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  // Forcing two adjacent level-1 nodes to the same color breaks properness.
  Hierarchy h(inst.graph, inst.labels.tree, 2);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    const NodeIndex next = h.backbone_next(v);
    if (next == kNoNode) continue;
    auto mutated = out;
    mutated[v] = mutated[next];
    EXPECT_FALSE(problem.valid_at(inst, mutated, v));
    return;
  }
  FAIL();
}

TEST(CpChecker, MandatoryExemptionEnforced) {
  auto inst = make_hierarchical_instance(2, 5, 9);
  auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
  auto out = cp_outputs(inst, cfg);
  CpTHCProblem problem(inst, 2);
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  Hierarchy h(inst.graph, inst.labels.tree, 3);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (h.level(v) == 2 && out[h.down(v)] != ThcColor::D) {
      ASSERT_EQ(out[v], ThcColor::X);
      auto mutated = out;
      mutated[v] = ThcColor::R;  // refuse the mandatory exemption
      EXPECT_FALSE(problem.valid_at(inst, mutated, v));
      return;
    }
  }
  FAIL();
}

// The Remark-5.7 claim, executable: the paper's way-point algorithm samples
// which subtrees to certify, so under the CP rules its colored outputs sit on
// certifying-but-unsampled nodes — mandatory exemption rejects them, while
// the same outputs are VALID for the paper's relaxed problem.
TEST(Remark57, WaypointOutputsValidRelaxedInvalidCp) {
  auto inst = make_hierarchical_instance_lens({6, 900}, 7);
  RandomTape tape(inst.ids, 31);
  auto cfg = HthcConfig::make(2, inst.node_count(), true, &tape, /*c=*/0.5);
  ASSERT_LT(cfg.waypoint_p(inst.node_count()), 0.2);
  Free src(inst);
  HthcSolver<Free> solver(src, cfg);
  std::vector<ThcColor> out(inst.node_count());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) out[v] = solver.solve_at(v);

  HierarchicalTHCProblem relaxed(inst, 2);
  EXPECT_TRUE(verify_all(relaxed, inst, out).ok);

  CpTHCProblem cp(inst, 2);
  const auto verdict = verify_all(cp, inst, out);
  EXPECT_FALSE(verdict.ok);
  // The violations are exactly the mandatory-exemption kind: colored top
  // nodes over certifying (shallow, solvable) level-1 components.
  EXPECT_GT(verdict.violations, 10);
}

}  // namespace
}  // namespace volcal
