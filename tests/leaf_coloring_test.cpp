#include "lcl/problems/leaf_coloring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

using Src = InstanceSource<ColoredTreeLabeling>;

std::vector<Color> solve_all_nearest(const LeafColoringInstance& inst,
                                     SweepResult<Color>* costs_out = nullptr) {
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&inst](Execution& exec) {
    Src src(inst, exec);
    return leafcoloring_nearest_leaf(src);
  });
  if (costs_out != nullptr) *costs_out = result;
  return result.output;
}

// ---------------------------------------------------------------------------
// Validity of the three algorithms across instance families (Thm. 3.6 upper
// bounds).
// ---------------------------------------------------------------------------

struct FamilyParam {
  const char* name;
  LeafColoringInstance (*make)(std::uint64_t seed);
};

LeafColoringInstance family_complete(std::uint64_t) {
  return make_complete_binary_tree(6, Color::Red, Color::Blue);
}
LeafColoringInstance family_random(std::uint64_t seed) {
  return make_random_full_binary_tree(301, seed);
}
LeafColoringInstance family_cycle(std::uint64_t seed) {
  return make_cycle_pseudotree(7, 3, seed);
}
LeafColoringInstance family_caterpillar(std::uint64_t seed) {
  return make_caterpillar(40, seed);
}
LeafColoringInstance family_noise(std::uint64_t seed) {
  return make_noise_instance(120, 4, seed);
}

class LeafColoringFamilies
    : public ::testing::TestWithParam<std::tuple<FamilyParam, std::uint64_t>> {};

TEST_P(LeafColoringFamilies, NearestLeafSolves) {
  const auto& [family, seed] = GetParam();
  auto inst = family.make(seed);
  SweepResult<Color> costs;
  auto out = solve_all_nearest(inst, &costs);
  LeafColoringProblem problem;
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << family.name << " first bad node " << verdict.first_bad;
  EXPECT_TRUE(satisfies_lemma_2_5(inst.graph, costs));
}

TEST_P(LeafColoringFamilies, LeftmostDescentSolves) {
  const auto& [family, seed] = GetParam();
  auto inst = family.make(seed);
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&inst](Execution& exec) {
    Src src(inst, exec);
    return leafcoloring_leftmost_descent(src);
  });
  LeafColoringProblem problem;
  auto verdict = verify_all(problem, inst, result.output);
  EXPECT_TRUE(verdict.ok) << family.name << " first bad node " << verdict.first_bad;
}

TEST_P(LeafColoringFamilies, RandomWalkSolves) {
  const auto& [family, seed] = GetParam();
  auto inst = family.make(seed);
  RandomTape tape(inst.ids, seed * 31 + 1);
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    Src src(inst, exec);
    return rw_to_leaf(src, tape);
  });
  LeafColoringProblem problem;
  auto verdict = verify_all(problem, inst, result.output);
  EXPECT_TRUE(verdict.ok) << family.name << " first bad node " << verdict.first_bad;
}

INSTANTIATE_TEST_SUITE_P(
    Families, LeafColoringFamilies,
    ::testing::Combine(::testing::Values(FamilyParam{"complete", family_complete},
                                         FamilyParam{"random", family_random},
                                         FamilyParam{"cycle", family_cycle},
                                         FamilyParam{"caterpillar", family_caterpillar},
                                         FamilyParam{"noise", family_noise}),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Figure 4 semantics: leaves echo, internals adopt a child's color.
// ---------------------------------------------------------------------------

TEST(LeafColoring, LeavesEchoInput) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  auto out = solve_all_nearest(inst);
  const NodeIndex first_leaf = (NodeIndex{1} << 4) - 1;
  for (NodeIndex v = first_leaf; v < inst.node_count(); ++v) {
    EXPECT_EQ(out[v], Color::Blue);
  }
  // With unanimous leaves, the unique valid solution colors everyone Blue
  // (the induction in Prop. 3.12).
  for (NodeIndex v = 0; v < first_leaf; ++v) EXPECT_EQ(out[v], Color::Blue);
}

TEST(LeafColoring, CheckerRejectsWrongInternalColor) {
  auto inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  auto out = solve_all_nearest(inst);
  LeafColoringProblem problem;
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  out[0] = Color::Red;  // children are Blue: root must match one of them
  EXPECT_FALSE(verify_all(problem, inst, out).ok);
}

TEST(LeafColoring, CheckerRejectsLeafMismatch) {
  auto inst = make_complete_binary_tree(3, Color::Red, Color::Blue);
  auto out = solve_all_nearest(inst);
  LeafColoringProblem problem;
  out[inst.node_count() - 1] = Color::Red;  // a leaf must echo Blue
  EXPECT_FALSE(verify_all(problem, inst, out).ok);
}

TEST(LeafColoring, InternalMayMatchEitherChild) {
  // Mixed leaf colors: any child's color works for the parent.
  auto inst = make_complete_binary_tree(1, Color::Red, Color::Blue);
  inst.labels.color[1] = Color::Red;
  inst.labels.color[2] = Color::Blue;
  LeafColoringProblem problem;
  std::vector<Color> out{Color::Red, Color::Red, Color::Blue};
  EXPECT_TRUE(verify_all(problem, inst, out).ok);
  out[0] = Color::Blue;
  EXPECT_TRUE(verify_all(problem, inst, out).ok);
}

// ---------------------------------------------------------------------------
// Cost shapes (Thm. 3.6): distance O(log n) for nearest-leaf, volume O(log n)
// whp for RWtoLeaf, volume Θ(n) for the deterministic solver on the hard
// instance.
// ---------------------------------------------------------------------------

TEST(LeafColoringCosts, NearestLeafDistanceLogarithmic) {
  for (int depth : {6, 8, 10}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    SweepResult<Color> costs;
    solve_all_nearest(inst, &costs);
    // Nearest leaf from the root is at depth `depth`; the BFS stays within
    // distance depth + O(1) = O(log n).
    EXPECT_LE(costs.stats.max_distance, depth + 2);
    EXPECT_GE(costs.stats.max_distance, depth - 1);
  }
}

TEST(LeafColoringCosts, NearestLeafVolumeLinearOnCompleteTree) {
  auto inst = make_complete_binary_tree(10, Color::Red, Color::Blue);
  SweepResult<Color> costs;
  solve_all_nearest(inst, &costs);
  // From the root, every internal node is explored before any leaf: Θ(n).
  EXPECT_GE(costs.stats.max_volume, inst.node_count() / 2);
}

TEST(LeafColoringCosts, RandomWalkVolumeLogarithmicWhp) {
  for (int depth : {8, 10, 12}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    RandomTape tape(inst.ids, 7 * depth);
    auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
      Src src(inst, exec);
      return rw_to_leaf(src, tape);
    });
    const double logn = std::log2(static_cast<double>(inst.node_count()));
    // Claim in Prop. 3.10: walk length <= 16 log n whp; each step costs O(1)
    // queries (internality checks), so volume = O(log n).
    EXPECT_LE(result.stats.max_volume, 16 * 8 * logn) << "depth " << depth;
  }
}

TEST(LeafColoringCosts, RandomWalkStepsBounded16LogN) {
  auto inst = make_random_full_binary_tree(2001, 13);
  RandomTape tape(inst.ids, 99);
  const double logn = std::log2(static_cast<double>(inst.node_count()));
  std::int64_t worst = 0;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    Execution exec(inst.graph, inst.ids, v);
    Src src(inst, exec);
    auto stats = rw_to_leaf_stats(src, tape);
    worst = std::max(worst, stats.steps);
  }
  EXPECT_LE(worst, static_cast<std::int64_t>(16 * logn));
}

TEST(LeafColoringCosts, TruncationProducesArbitraryButBoundedRun) {
  auto inst = make_complete_binary_tree(10, Color::Red, Color::Blue);
  RandomTape tape(inst.ids, 5);
  Execution exec(inst.graph, inst.ids, 0);
  Src src(inst, exec);
  auto stats = rw_to_leaf_stats(src, tape, /*max_steps=*/3);
  EXPECT_LE(stats.steps, 3);
  // With depth 10, three steps cannot reach a leaf.
  EXPECT_TRUE(stats.truncated);
}

TEST(LeafColoringCosts, CyclePseudotreeWalkEscapesCycle) {
  // A start node is revisited only when *every* cycle node's coin says LC
  // (probability 2^-len per tape), so use a short cycle and many tapes: the
  // revisit-flip branch of Algorithm 1 line 4 must fire at least once and
  // every walk must still terminate at a leaf.
  auto inst = make_cycle_pseudotree(3, 2, 3);
  bool saw_revisit = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    RandomTape tape(inst.ids, seed);
    for (NodeIndex v = 0; v < 3; ++v) {
      Execution exec(inst.graph, inst.ids, v);
      Src src(inst, exec);
      auto stats = rw_to_leaf_stats(src, tape, 100);
      EXPECT_FALSE(stats.truncated) << "seed " << seed << " node " << v;
      saw_revisit |= stats.revisited_start;
    }
  }
  // P(no revisit over 64 tapes) = (7/8)^64 ≈ 2e-4.
  EXPECT_TRUE(saw_revisit);
}

TEST(LeafColoringCosts, CycleWalksProduceValidOutputs) {
  auto inst = make_cycle_pseudotree(12, 3, 5);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RandomTape tape(inst.ids, seed);
    auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
      Src src(inst, exec);
      return rw_to_leaf(src, tape);
    });
    LeafColoringProblem problem;
    EXPECT_TRUE(verify_all(problem, inst, result.output).ok) << seed;
  }
}

// ---------------------------------------------------------------------------
// Prop. 3.12 hard distribution: any distance-limited algorithm fails with
// probability 1/2 when the leaf color is a fair coin.
// ---------------------------------------------------------------------------

TEST(LeafColoringLowerBound, DistanceLimitedRootGuessesHalfWrong) {
  const int depth = 8;
  int wrong = 0;
  const int trials = 64;
  for (int t = 0; t < trials; ++t) {
    const Color chi0 = (t % 2 == 0) ? Color::Red : Color::Blue;
    auto inst = make_complete_binary_tree(depth, Color::Red, chi0);
    // A (depth-1)-limited execution from the root sees no leaf; its output
    // cannot depend on chi0.  Simulate with the truncated nearest-leaf
    // search: budget below the first leaf level.
    Execution exec(inst.graph, inst.ids, 0, (NodeIndex{1} << depth) - 2);
    Src src(inst, exec);
    Color out = Color::Red;
    try {
      out = leafcoloring_nearest_leaf(src);
    } catch (const QueryBudgetExceeded&) {
      out = Color::Red;  // arbitrary deterministic fallback
    }
    // Unique valid solution is unanimous chi0.
    if (out != chi0) ++wrong;
  }
  EXPECT_EQ(wrong, trials / 2);  // wrong exactly when chi0 = Blue
}

// ---------------------------------------------------------------------------
// TreeView classification through queries matches the global classifier.
// ---------------------------------------------------------------------------

class ViewMatchesGlobal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewMatchesGlobal, OnNoise) {
  auto inst = make_noise_instance(150, 4, GetParam());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    Execution exec(inst.graph, inst.ids, v);
    Src src(inst, exec);
    TreeView<Src> view(src);
    EXPECT_EQ(view.internal(v), is_internal(inst.graph, inst.labels.tree, v)) << v;
    EXPECT_EQ(view.leaf(v), is_leaf(inst.graph, inst.labels.tree, v)) << v;
    // Classification is a constant-query operation.
    EXPECT_LE(exec.volume(), 16) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewMatchesGlobal, ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace volcal
