#include "bench_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"

namespace volcal::bench {
namespace {

void expect_valid_sample(NodeIndex n, NodeIndex count) {
  const auto starts = sampled_starts(n, count);
  ASSERT_FALSE(starts.empty());
  EXPECT_LE(starts.size(), static_cast<std::size_t>(count));
  EXPECT_EQ(starts.front(), 0);
  if (count >= 2) EXPECT_EQ(starts.back(), n - 1);
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
  EXPECT_EQ(std::adjacent_find(starts.begin(), starts.end()), starts.end()) << "duplicates";
  for (const NodeIndex v : starts) EXPECT_LT(v, n);
}

TEST(SampledStarts, AtMostCountAndCoversBothEnds) {
  expect_valid_sample(100, 10);
  EXPECT_EQ(sampled_starts(100, 10).size(), 10u);
  expect_valid_sample(7, 3);
  expect_valid_sample(2, 2);
}

// Regression: the pre-fix implementation clamped count up with max(count, 2),
// so a request for "at most 1" start returned 2 — fuzz-found (corpus case
// sampled-starts-count1.repro); count == 1 now yields exactly the root.
TEST(SampledStarts, CountOneYieldsRootOnly) {
  EXPECT_EQ(sampled_starts(100, 1), std::vector<NodeIndex>{0});
  EXPECT_EQ(sampled_starts(1, 1), std::vector<NodeIndex>{0});
  expect_valid_sample(64, 1);
}

TEST(SampledStarts, SmallGraphsYieldEveryNode) {
  const auto starts = sampled_starts(5, 10);
  EXPECT_EQ(starts, (std::vector<NodeIndex>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sampled_starts(1, 10), std::vector<NodeIndex>{0});
  EXPECT_TRUE(sampled_starts(0, 10).empty());
  EXPECT_TRUE(sampled_starts(10, 0).empty());
}

// The pre-fix implementation used step = max(1, n/count) and overshot: for
// n=1000, count=24 it returned 42 starts and never sampled the last node.
TEST(SampledStarts, RegressionNoOvershoot) {
  const auto starts = sampled_starts(1000, 24);
  EXPECT_EQ(starts.size(), 24u);
  EXPECT_EQ(starts.back(), 999);
  expect_valid_sample(1 << 16, 24);
}

TEST(Measure, MatchesDirectSerialSweep) {
  auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  const auto starts = sampled_starts(inst.node_count(), 12);
  auto solve = [&](Execution& exec) {
    InstanceSource<ColoredTreeLabeling> src(inst, exec);
    leafcoloring_nearest_leaf(src);
  };
  const ::volcal::SweepStats cost = measure(inst.graph, inst.ids, starts, solve);
  ::volcal::SweepStats direct;
  for (const NodeIndex v : starts) {
    Execution exec(inst.graph, inst.ids, v);
    solve(exec);
    direct.max_volume = std::max(direct.max_volume, exec.volume());
    direct.max_distance = std::max(direct.max_distance, exec.distance());
    direct.total_queries += exec.query_count();
    ++direct.starts;
  }
  EXPECT_EQ(cost.max_volume, direct.max_volume);
  EXPECT_EQ(cost.max_distance, direct.max_distance);
  EXPECT_EQ(cost.total_queries, direct.total_queries);
  EXPECT_EQ(cost.starts, direct.starts);
  EXPECT_GE(cost.wall_seconds, 0.0);
}

TEST(Args, ParsesAllFlagsInBothForms) {
  const char* raw[] = {"bench",          "--json",   "out.json", "--trace=t.jsonl",
                       "--chrome-trace", "c.json",   "--metrics=m.json",
                       "--filter",       "hthc",     "--max-n=4096",
                       nullptr};
  int argc = 10;
  char* argv[11];
  for (int i = 0; i < argc; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[argc] = nullptr;
  const Args args = Args::parse(&argc, argv, "bench");
  EXPECT_STREQ(args.json, "out.json");
  EXPECT_STREQ(args.trace, "t.jsonl");
  EXPECT_STREQ(args.chrome_trace, "c.json");
  EXPECT_STREQ(args.metrics, "m.json");
  EXPECT_EQ(args.filter, "hthc");
  EXPECT_EQ(args.max_n, 4096);
  EXPECT_TRUE(args.observing());
  // Everything was ours: argv is compacted down to the program name.
  EXPECT_EQ(argc, 1);
  EXPECT_EQ(argv[1], nullptr);
  // parse() publishes the result for deep helpers.
  EXPECT_EQ(Args::current().max_n, 4096);
}

TEST(Args, LeavesForeignFlagsForTheBinary) {
  const char* raw[] = {"bench", "--benchmark_filter=BM_x", "--max-n", "100",
                       "positional", nullptr};
  int argc = 5;
  char* argv[6];
  for (int i = 0; i < argc; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[argc] = nullptr;
  const Args args = Args::parse(&argc, argv, "bench");
  EXPECT_EQ(args.max_n, 100);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=BM_x");
  EXPECT_STREQ(argv[2], "positional");
  EXPECT_EQ(argv[3], nullptr);
  EXPECT_FALSE(args.observing());
}

TEST(Args, KeepNGatesOnlyWhenMaxNSet) {
  Args args;
  EXPECT_TRUE(args.keep_n(1));
  EXPECT_TRUE(args.keep_n(1'000'000'000));  // no --max-n: keep everything
  args.max_n = 1000;
  EXPECT_TRUE(args.keep_n(1000));
  EXPECT_FALSE(args.keep_n(1001));
}

TEST(Args, MissingOperandIsNotConsumed) {
  const char* raw[] = {"bench", "--json", nullptr};  // --json with no value
  int argc = 2;
  char* argv[3];
  for (int i = 0; i < argc; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[argc] = nullptr;
  const Args args = Args::parse(&argc, argv, "bench");
  EXPECT_EQ(args.json, nullptr);
  // The dangling flag is left in argv rather than silently swallowed.
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--json");
}

TEST(JsonReport, ParsesJsonFlag) {
  const char* argv1[] = {"bench", "--json", "out.json"};
  EXPECT_STREQ(json_path_from_args(3, const_cast<char**>(argv1)), "out.json");
  const char* argv2[] = {"bench", "--json=curves.json"};
  EXPECT_STREQ(json_path_from_args(2, const_cast<char**>(argv2)), "curves.json");
  const char* argv3[] = {"bench"};
  EXPECT_EQ(json_path_from_args(1, const_cast<char**>(argv3)), nullptr);
  const char* argv4[] = {"bench", "--json"};  // missing operand
  EXPECT_EQ(json_path_from_args(2, const_cast<char**>(argv4)), nullptr);
}

TEST(JsonReport, RendersCurvesWithFitAndWallTime) {
  Curve c;
  c.add(100, 10, 0.5);
  c.add(1000, 20, 1.5);
  c.add(10000, 30, 2.5);
  JsonReport report("bench_test");
  report.add("say \"hi\"", c);
  const std::string doc = report.render();
  EXPECT_NE(doc.find("\"tool\": \"bench_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"fitted\": \"" + c.fitted() + "\""), std::string::npos);
  EXPECT_NE(doc.find("{\"n\": 100, \"cost\": 10, \"wall_seconds\": 0.5}"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_seconds\": 2.5"), std::string::npos);
}

// Regression for the mutable-singleton leak: parse() used to overwrite the
// process-wide Args with no way to restore it, so a test that parsed flags
// poisoned --max-n for everything after it.  install()/reset() make the
// lifecycle explicit.
TEST(Args, InstallAndResetScopeTheProcessWideArgs) {
  Args::reset();
  EXPECT_EQ(Args::current().max_n, 0);
  EXPECT_TRUE(Args::current().filter.empty());

  Args scoped;
  scoped.max_n = 777;
  scoped.filter = "hthc";
  Args::install(scoped);
  EXPECT_EQ(Args::current().max_n, 777);
  EXPECT_EQ(Args::current().filter, "hthc");

  // parse() installs its result, replacing the previous Args wholesale.
  const char* raw[] = {"bench", "--max-n", "42", nullptr};
  int argc = 3;
  char* argv[4];
  for (int i = 0; i < argc; ++i) argv[i] = const_cast<char*>(raw[i]);
  argv[argc] = nullptr;
  (void)Args::parse(&argc, argv, "bench");
  EXPECT_EQ(Args::current().max_n, 42);
  EXPECT_TRUE(Args::current().filter.empty()) << "stale filter leaked through parse()";

  Args::reset();
  EXPECT_EQ(Args::current().max_n, 0);
}

TEST(JsonReport, ReportsFittedExponentAndRSquared) {
  Curve c;  // exact power law cost = n^1: exponent 1, r^2 1
  c.add(256, 256);
  c.add(512, 512);
  c.add(1024, 1024);
  c.add(2048, 2048);
  const stats::GrowthFit fit = c.fit();
  EXPECT_NEAR(fit.exponent, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.999);

  JsonReport report("bench_test");
  report.add("linear", c, "Θ(n)");
  const std::string doc = report.render();
  EXPECT_NE(doc.find("\"claim\": \"Θ(n)\""), std::string::npos);
  EXPECT_NE(doc.find("\"exponent\": "), std::string::npos);
  EXPECT_NE(doc.find("\"r_squared\": "), std::string::npos);
  // The rendered values match the fit, not some re-derivation drift: parse
  // the artifact back and compare exactly.
  std::string err;
  const perf::JsonValue parsed = perf::parse_json(doc, &err);
  ASSERT_TRUE(parsed.is_object()) << err;
  auto art = perf::BenchArtifact::from_json(parsed, &err);
  ASSERT_TRUE(art.has_value()) << err;
  ASSERT_EQ(art->curves.size(), 1u);
  EXPECT_EQ(art->curves[0].exponent, fit.exponent);
  EXPECT_EQ(art->curves[0].r_squared, fit.r_squared);
  EXPECT_EQ(art->curves[0].fitted, fit.label);
}

TEST(JsonReport, BelowThreePointsFitIsNa) {
  Curve c;
  c.add(256, 1);
  c.add(512, 2);
  JsonReport report("bench_test");
  report.add("tiny", c);
  EXPECT_NE(report.render().find("\"fitted\": \"(n/a)\""), std::string::npos);
}

TEST(JsonReport, PhaseScopesLandInArtifact) {
  JsonReport report("bench_test");
  {
    auto p = report.phase("alpha");
  }
  {
    auto p = report.phase("beta");
  }
  {
    auto p = report.phase("alpha");  // re-entry accumulates, keeps order
  }
  const perf::BenchArtifact art = report.artifact();
  ASSERT_EQ(art.phases.size(), 2u);
  EXPECT_EQ(art.phases[0].name, "alpha");
  EXPECT_EQ(art.phases[1].name, "beta");
  EXPECT_EQ(art.kind, "bench-report");
  EXPECT_EQ(art.schema_version, perf::kArtifactSchemaVersion);
  EXPECT_FALSE(art.env.compiler.empty());
}

TEST(JsonReport, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("Θ(log n)"), "Θ(log n)");  // UTF-8 untouched
}

}  // namespace
}  // namespace volcal::bench
