#include "lcl/problems/matching.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "labels/generators.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

class MatchingGraphs
    : public ::testing::TestWithParam<std::tuple<NodeIndex, int, std::uint64_t>> {};

TEST_P(MatchingGraphs, ProducesValidMaximalMatching) {
  const auto [n, max_degree, seed] = GetParam();
  auto inst = make_noise_instance(n, max_degree, seed);
  auto ids = IdAssignment::shuffled(n, seed + 3);
  RandomTape tape(ids, seed * 7 + 1);
  auto result = run_at_all_nodes(inst.graph, ids, [&](Execution& exec) {
    return matching_lca_query(exec, tape);
  });
  EXPECT_TRUE(MatchingProblem::valid(inst.graph, result.output))
      << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(satisfies_lemma_2_5(inst.graph, result));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatchingGraphs,
    ::testing::Combine(::testing::Values<NodeIndex>(40, 150, 600),
                       ::testing::Values(3, 4), ::testing::Values(1u, 2u, 3u)));

TEST(MatchingLca, RingMatchingValid) {
  auto ring = make_ring(129, 5);
  RandomTape tape(ring.ids, 7);
  auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
    return matching_lca_query(exec, tape);
  });
  EXPECT_TRUE(MatchingProblem::valid(ring.graph, result.output));
}

TEST(MatchingLca, VolumeModest) {
  auto ring = make_ring(4096, 9);
  RandomTape tape(ring.ids, 3);
  auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
    return matching_lca_query(exec, tape);
  });
  EXPECT_LT(result.stats.max_volume,
            static_cast<std::int64_t>(16 * std::log2(4096.0)));
}

TEST(MatchingLca, MutualAgreement) {
  // Both endpoints of a matched edge must name each other without any
  // global coordination — determinism in the shared tape.
  auto ring = make_ring(64, 11);
  RandomTape tape(ring.ids, 5);
  auto result = run_at_all_nodes(ring.graph, ring.ids, [&](Execution& exec) {
    return matching_lca_query(exec, tape);
  });
  for (NodeIndex v = 0; v < 64; ++v) {
    const Port p = result.output[v];
    if (p == kNoPort) continue;
    const NodeIndex w = ring.graph.neighbor(v, p);
    EXPECT_EQ(ring.graph.neighbor(w, result.output[w]), v) << v;
  }
}

TEST(MatchingChecker, RejectsOneSidedClaim) {
  auto ring = make_ring(4, 1);
  std::vector<Port> out{1, kNoPort, kNoPort, kNoPort};
  EXPECT_FALSE(MatchingProblem::valid(ring.graph, out));
}

TEST(MatchingChecker, RejectsNonMaximal) {
  auto ring = make_ring(4, 1);
  std::vector<Port> none(4, kNoPort);
  EXPECT_FALSE(MatchingProblem::valid(ring.graph, none));
}

TEST(MatchingChecker, AcceptsPerfectRingMatching) {
  auto ring = make_ring(4, 1);
  // Nodes 0-1 matched (0's port1 -> 1; 1's port2 -> 0), likewise 2-3.
  std::vector<Port> out{1, 2, 1, 2};
  EXPECT_TRUE(MatchingProblem::valid(ring.graph, out));
}

}  // namespace
}  // namespace volcal
