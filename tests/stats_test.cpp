#include <gtest/gtest.h>

#include <cmath>

#include "stats/growth.hpp"
#include "stats/table.hpp"

namespace volcal::stats {
namespace {

std::vector<double> sweep() {
  std::vector<double> ns;
  for (double n = 256; n <= 1 << 20; n *= 4) ns.push_back(n);
  return ns;
}

TEST(LogStar, KnownValues) {
  EXPECT_DOUBLE_EQ(log_star(1), 0);
  EXPECT_DOUBLE_EQ(log_star(2), 1);
  EXPECT_DOUBLE_EQ(log_star(4), 2);
  EXPECT_DOUBLE_EQ(log_star(16), 3);
  EXPECT_DOUBLE_EQ(log_star(65536), 4);
}

TEST(LeastSquares, PerfectLine) {
  auto fit = least_squares({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(LeastSquares, NeedsTwoPoints) {
  EXPECT_THROW(least_squares({1}, {1}), std::invalid_argument);
  EXPECT_THROW(least_squares({1, 2}, {1}), std::invalid_argument);
}

TEST(LogLogSlope, Sqrt) {
  std::vector<double> ns = sweep(), cs;
  for (double n : ns) cs.push_back(3 * std::sqrt(n));
  EXPECT_NEAR(loglog_slope(ns, cs), 0.5, 0.01);
}

TEST(ClassifyGrowth, Constant) {
  std::vector<double> ns = sweep(), cs(ns.size(), 7.0);
  EXPECT_EQ(classify_growth(ns, cs).cls, GrowthClass::Constant);
}

TEST(ClassifyGrowth, Logarithmic) {
  std::vector<double> ns = sweep(), cs;
  for (double n : ns) cs.push_back(4 * std::log2(n) + 3);
  auto fit = classify_growth(ns, cs);
  EXPECT_EQ(fit.cls, GrowthClass::Log) << fit.label;
}

TEST(ClassifyGrowth, Linear) {
  std::vector<double> ns = sweep(), cs;
  for (double n : ns) cs.push_back(0.5 * n + 10);
  auto fit = classify_growth(ns, cs);
  EXPECT_EQ(fit.cls, GrowthClass::Linear) << fit.label;
  EXPECT_NEAR(fit.exponent, 1.0, 0.1);
}

TEST(ClassifyGrowth, SquareRoot) {
  std::vector<double> ns = sweep(), cs;
  for (double n : ns) cs.push_back(2 * std::sqrt(n));
  auto fit = classify_growth(ns, cs);
  EXPECT_EQ(fit.cls, GrowthClass::PolyRoot) << fit.label;
  EXPECT_NEAR(fit.exponent, 0.5, 0.05);
}

TEST(ClassifyGrowth, CubeRoot) {
  std::vector<double> ns = sweep(), cs;
  for (double n : ns) cs.push_back(5 * std::cbrt(n));
  auto fit = classify_growth(ns, cs);
  EXPECT_EQ(fit.cls, GrowthClass::PolyRoot) << fit.label;
  EXPECT_NEAR(fit.exponent, 1.0 / 3.0, 0.05);
}

TEST(ClassifyGrowth, NoisyLogStaysLog) {
  std::vector<double> ns = sweep(), cs;
  int flip = 1;
  for (double n : ns) {
    cs.push_back(16 * std::log2(n) * (1.0 + 0.05 * flip));
    flip = -flip;
  }
  EXPECT_EQ(classify_growth(ns, cs).cls, GrowthClass::Log);
}

TEST(Summarize, Basics) {
  auto s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  // Nearest-rank p95 of 5 values: rank ceil(4.75) = 5 -> the maximum.
  EXPECT_DOUBLE_EQ(s.p95, 5);
}

// Regression: the pre-fix median took the upper element for even counts
// (here 3 instead of 2.5) and p95 floor-truncated its rank index (9 instead
// of 10 for ten values).
TEST(Summarize, EvenCountMedianIsMidpoint) {
  auto s = summarize({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.p95, 4);  // rank ceil(3.8) = 4
}

TEST(Summarize, P95IsNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) v.push_back(i);
  auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_DOUBLE_EQ(s.p95, 10);  // rank ceil(9.5) = 10
  v.clear();
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(summarize(v).p95, 95);  // rank ceil(95) = 95
  EXPECT_DOUBLE_EQ(summarize({7.0}).p95, 7.0);
}

// p99 follows the same nearest-rank definition as p95 (it feeds the serve
// layer's tail-latency reporting, where p99 is the headline number).
TEST(Summarize, P99IsNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.p99, 99);  // rank ceil(99) = 99
  v.push_back(101);
  v.push_back(102);
  // 102 values: rank ceil(100.98) = 101 -> the 101st order statistic.
  EXPECT_DOUBLE_EQ(summarize(v).p99, 101);
  EXPECT_DOUBLE_EQ(summarize({7.0}).p99, 7.0);
  EXPECT_DOUBLE_EQ(summarize({3, 1}).p99, 3);
  // p99 >= p95 always (both nearest-rank over the same sorted data).
  EXPECT_GE(summarize(v).p99, summarize(v).p95);
}

TEST(Summarize, Empty) {
  auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"β", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("β"), std::string::npos);
  EXPECT_NE(out.find("--"), std::string::npos);
}

}  // namespace
}  // namespace volcal::stats
