#include "lcl/problems/balanced_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/disjointness.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

using Src = InstanceSource<BalancedTreeLabeling>;

std::vector<BtOutput> solve_all(const BalancedTreeInstance& inst, std::int64_t depth_limit,
                                SweepResult<BtOutput>* costs_out = nullptr) {
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    Src src(inst, exec);
    return balancedtree_solve(src, depth_limit);
  });
  if (costs_out != nullptr) *costs_out = result;
  return result.output;
}

// ---------------------------------------------------------------------------
// Compatibility (Def. 4.2)
// ---------------------------------------------------------------------------

class CompatDepths : public ::testing::TestWithParam<int> {};

TEST_P(CompatDepths, BalancedInstanceGloballyCompatible) {
  auto inst = make_balanced_instance(GetParam());
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    ASSERT_TRUE(is_consistent(inst.graph, inst.labels.tree, v)) << v;
    EXPECT_TRUE(bt_compatible(inst.graph, inst.labels, v)) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, CompatDepths, ::testing::Values(1, 2, 3, 4, 6));

TEST(Compat, UnbalancedInstanceHasIncompatibleNodes) {
  auto inst = make_unbalanced_instance(4, 3, 7);
  std::int64_t incompatible = 0;
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    if (is_consistent(inst.graph, inst.labels.tree, v) &&
        !bt_compatible(inst.graph, inst.labels, v)) {
      ++incompatible;
    }
  }
  EXPECT_GT(incompatible, 0);
}

TEST(Compat, BrokenAgreementDetected) {
  auto inst = make_balanced_instance(3);
  // Find a node with a right neighbor and break the reciprocal claim.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    const NodeIndex rn = resolve(inst.graph, v, inst.labels.right_nbr[v]);
    if (rn != kNoNode) {
      inst.labels.left_nbr[rn] = kNoPort;
      EXPECT_FALSE(bt_compatible(inst.graph, inst.labels, v));
      return;
    }
  }
  FAIL() << "no lateral edge found";
}

TEST(Compat, QueryVersionMatchesGlobal) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto inst = make_unbalanced_instance(4, 2, seed);
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      if (!is_consistent(inst.graph, inst.labels.tree, v)) continue;
      Execution exec(inst.graph, inst.ids, v);
      Src src(inst, exec);
      EXPECT_EQ(query_bt_compatible(src, v), bt_compatible(inst.graph, inst.labels, v))
          << v;
      EXPECT_LE(exec.volume(), 40) << v;  // constant-radius check
    }
  }
}

// ---------------------------------------------------------------------------
// Solver validity (Prop. 4.8) and the aggregate output semantics (Lemma 4.7)
// ---------------------------------------------------------------------------

TEST(BalancedTreeSolver, BalancedInstanceAllBalanced) {
  auto inst = make_balanced_instance(5);
  SweepResult<BtOutput> costs;
  auto out = solve_all(inst, 0, &costs);
  BalancedTreeProblem problem;
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
  // Lemma 4.7: globally compatible => every consistent node outputs (B, P).
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(out[v].beta, Balance::Balanced) << v;
    EXPECT_EQ(out[v].p, inst.labels.tree.parent[v]) << v;
  }
  EXPECT_TRUE(satisfies_lemma_2_5(inst.graph, costs));
}

class UnbalancedSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnbalancedSeeds, SolverValidAndRootUnbalanced) {
  auto inst = make_unbalanced_instance(5, 3, GetParam());
  auto out = solve_all(inst, 0);
  BalancedTreeProblem problem;
  auto verdict = verify_all(problem, inst, out);
  EXPECT_TRUE(verdict.ok) << "first bad " << verdict.first_bad;
  // Lemma 4.7 converse: the root has an incompatible descendant, so it must
  // output (U, ·).
  EXPECT_EQ(out[0].beta, Balance::Unbalanced);
  EXPECT_NE(out[0].p, kNoPort);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnbalancedSeeds, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(BalancedTreeSolver, DepthLimitedVariantAgrees) {
  auto inst = make_balanced_instance(5);
  const auto limit =
      static_cast<std::int64_t>(std::ceil(std::log2(inst.node_count()))) + 2;
  auto out = solve_all(inst, limit);
  BalancedTreeProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, out).ok);
}

TEST(BalancedTreeSolver, DistanceLogarithmicVolumeLinear) {
  for (int depth : {5, 7, 9}) {
    auto inst = make_balanced_instance(depth);
    SweepResult<BtOutput> costs;
    solve_all(inst, 0, &costs);
    EXPECT_LE(costs.stats.max_distance, depth + 4) << depth;  // O(log n)
    EXPECT_GE(costs.stats.max_volume, (NodeIndex{1} << depth) - 1) << depth;  // Θ(n) from root
  }
}

TEST(BalancedTreeChecker, RejectsRootClaimingBalancedOverDefect) {
  auto inst = make_unbalanced_instance(4, 2, 9);
  auto out = solve_all(inst, 0);
  BalancedTreeProblem problem;
  ASSERT_TRUE(verify_all(problem, inst, out).ok);
  out[0] = {Balance::Balanced, inst.labels.tree.parent[0]};
  EXPECT_FALSE(verify_all(problem, inst, out).ok);
}

TEST(BalancedTreeChecker, RejectsWrongPortOnBalanced) {
  auto inst = make_balanced_instance(3);
  auto out = solve_all(inst, 0);
  BalancedTreeProblem problem;
  out[3].p = static_cast<Port>(out[3].p + 1);
  EXPECT_FALSE(verify_all(problem, inst, out).ok);
}

// ---------------------------------------------------------------------------
// Section 2.5 machinery: the disjointness embedding of Prop. 4.9
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> bits_from(std::uint64_t word, int n) {
  std::vector<std::uint8_t> out(n);
  for (int i = 0; i < n; ++i) out[i] = (word >> i) & 1;
  return out;
}

class DisjEmbedding : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjEmbedding, CompatibleIffDisjoint) {
  const int depth = 4;
  const int big_n = 1 << (depth - 1);
  const auto a = bits_from(GetParam() * 2654435761u, big_n);
  const auto b = bits_from(GetParam() * 40503u + 17, big_n);
  auto emb = make_disj_embedding(depth, a, b);
  bool all_compatible = true;
  for (NodeIndex v = 0; v < emb.instance.node_count(); ++v) {
    if (is_consistent(emb.instance.graph, emb.instance.labels.tree, v)) {
      all_compatible &= bt_compatible(emb.instance.graph, emb.instance.labels, v);
    }
  }
  EXPECT_EQ(all_compatible, disj(a, b));
}

TEST_P(DisjEmbedding, RootOutputComputesDisj) {
  // g(E(a,b)) = [root outputs Balanced] must equal disj(a,b) — the embedding
  // property f(x,y) = g(E(x,y)) of Def. 2.7.
  const int depth = 4;
  const int big_n = 1 << (depth - 1);
  const auto a = bits_from(GetParam() * 97u + 5, big_n);
  const auto b = bits_from(GetParam() * 31u + 3, big_n);
  auto emb = make_disj_embedding(depth, a, b);
  Execution exec(emb.instance.graph, emb.instance.ids, emb.root);
  Src src(emb.instance, exec);
  const BtOutput out = balancedtree_solve(src);
  EXPECT_EQ(out.beta == Balance::Balanced, disj(a, b));
}

INSTANTIATE_TEST_SUITE_P(Words, DisjEmbedding,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(DisjEmbedding, SingleIntersectionPromise) {
  // Thm. 2.10 holds under the promise |a ∧ b| <= 1; check both promise sides.
  const int depth = 5;
  const int big_n = 1 << (depth - 1);
  std::vector<std::uint8_t> a(big_n, 0), b(big_n, 0);
  a[5] = 1;
  b[5] = 1;
  auto emb = make_disj_embedding(depth, a, b);
  Execution exec(emb.instance.graph, emb.instance.ids, emb.root);
  Src src(emb.instance, exec);
  EXPECT_EQ(balancedtree_solve(src).beta, Balance::Unbalanced);
}

TEST(CommAccounting, OnlyLeafPairQueriesCharged) {
  const int depth = 4;
  const int big_n = 1 << (depth - 1);
  const std::vector<std::uint8_t> zeros(big_n, 0);
  auto emb = make_disj_embedding(depth, zeros, zeros);
  CommAccountant acc(emb);
  // Exploring only the top of the tree costs zero communication.
  {
    Execution exec(emb.instance.graph, emb.instance.ids, emb.root);
    explore_ball(exec, depth - 1);
    EXPECT_EQ(acc.bits_for(exec), 0);
  }
  // Exploring everything costs exactly 2 bits per leaf-pair member = 4N.
  {
    Execution exec(emb.instance.graph, emb.instance.ids, emb.root);
    explore_ball(exec, depth + 1);
    EXPECT_EQ(acc.bits_for(exec), 4 * big_n);
    auto touched = acc.pairs_touched(exec);
    for (auto t : touched) EXPECT_EQ(t, 1);
  }
}

TEST(CommAccounting, SolverOnFullInstancePaysLinearBits) {
  // Theorem 2.9 mechanism: our solver answers DISJ, so it must pay Ω(N) bits.
  const int depth = 6;
  const int big_n = 1 << (depth - 1);
  const std::vector<std::uint8_t> zeros(big_n, 0);
  auto emb = make_disj_embedding(depth, zeros, zeros);
  CommAccountant acc(emb);
  Execution exec(emb.instance.graph, emb.instance.ids, emb.root);
  Src src(emb.instance, exec);
  const BtOutput out = balancedtree_solve(src);
  EXPECT_EQ(out.beta, Balance::Balanced);
  EXPECT_GE(acc.bits_for(exec), 2 * big_n);  // touched every pair
}

// ---------------------------------------------------------------------------
// The executable volume lower bound (fooling pairs)
// ---------------------------------------------------------------------------

TEST(FoolingDuel, BudgetLimitedSolverIsFooled) {
  RootedBtAlgorithm algo = [](const BalancedTreeInstance& inst, Execution& exec) {
    Src src(inst, exec);
    return balancedtree_solve(src);
  };
  // Budget = half the leaves: some pair is necessarily untouched.
  const int depth = 6;
  const std::int64_t n = (std::int64_t{1} << (depth + 1)) - 1;
  auto result = duel_balancedtree_volume(algo, depth, n / 2);
  ASSERT_FALSE(result.algorithm_exceeded_budget ? false : !result.fooled &&
               result.pair_index < 0)
      << "solver claimed to see every pair within half budget";
  if (!result.algorithm_exceeded_budget) {
    EXPECT_TRUE(result.fooled);
    EXPECT_GE(result.pair_index, 0);
  }
}

TEST(FoolingDuel, FullBudgetSolverSurvives) {
  RootedBtAlgorithm algo = [](const BalancedTreeInstance& inst, Execution& exec) {
    Src src(inst, exec);
    return balancedtree_solve(src);
  };
  auto result = duel_balancedtree_volume(algo, 5, 0);  // unlimited
  EXPECT_FALSE(result.algorithm_exceeded_budget);
  EXPECT_FALSE(result.fooled);
  EXPECT_EQ(result.base_output.beta, Balance::Balanced);
}

TEST(FoolingDuel, LazyAlgorithmAlwaysFooled) {
  // A (wrong) algorithm that answers from the top alone.
  RootedBtAlgorithm lazy = [](const BalancedTreeInstance& inst, Execution& exec) {
    Src src(inst, exec);
    explore_ball(exec, 2);
    return BtOutput{Balance::Balanced, inst.labels.tree.parent[exec.start()]};
  };
  auto result = duel_balancedtree_volume(lazy, 5, 0);
  EXPECT_TRUE(result.fooled);
}

}  // namespace
}  // namespace volcal
