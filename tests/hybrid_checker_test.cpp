// Per-condition coverage of the Hybrid-THC validity rules (Def. 6.1): the
// level-1 BalancedTree/decline disjunction, the modified level-2 exemption,
// and the pass-through to Def. 5.5 above level 2.
#include <gtest/gtest.h>

#include "labels/generators.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "lcl/problems/hybrid_thc.hpp"

namespace volcal {
namespace {

struct Fixture {
  HybridInstance inst;
  int k;
  Hierarchy h;
  std::vector<HybridOutput> valid;

  Fixture(int k_in, NodeIndex b, int d, std::uint64_t seed)
      : inst(make_hybrid_instance(k_in, b, d, seed)),
        k(k_in),
        h(inst.graph, inst.labels.bal.tree, k_in + 1, inst.labels.level_in) {
    auto cfg = HybridConfig::make(k, inst.node_count());
    FreeSource<HybridLabeling> src(inst);
    valid.resize(inst.node_count());
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      src.set_start(v);
      valid[v] = hybrid_solve_distance(src, cfg);
    }
  }

  bool check(const std::vector<HybridOutput>& out, NodeIndex v) const {
    HybridTHCProblem problem(inst, k);
    return problem.valid_at(inst, out, v);
  }

  NodeIndex level2_host() const {
    for (NodeIndex v = 0; v < inst.node_count(); ++v) {
      if (inst.labels.level_in[v] == 2 && h.down(v) != kNoNode) return v;
    }
    return kNoNode;
  }
};

TEST(HybridChecker, BaseOutputValid) {
  Fixture fx(3, 3, 2, 1);
  HybridTHCProblem problem(fx.inst, fx.k);
  EXPECT_TRUE(verify_all(problem, fx.inst, fx.valid).ok);
}

TEST(HybridChecker, Level1BtOutputsRequiredToChain) {
  Fixture fx(2, 3, 2, 2);
  const NodeIndex host = fx.level2_host();
  ASSERT_NE(host, kNoNode);
  const NodeIndex root = fx.h.down(host);
  // The component root passed (B, P); flipping it to a wrong port breaks it.
  auto out = fx.valid;
  ASSERT_TRUE(out[root].is_bt);
  out[root].bt.p = static_cast<Port>(out[root].bt.p + 1);
  EXPECT_FALSE(fx.check(out, root));
}

TEST(HybridChecker, Level1ThcSymbolsOtherThanDRejected) {
  Fixture fx(2, 3, 2, 3);
  const NodeIndex root = fx.h.down(fx.level2_host());
  for (const ThcColor symbol : {ThcColor::R, ThcColor::B, ThcColor::X}) {
    auto out = fx.valid;
    out[root] = HybridOutput::symbol(symbol);
    EXPECT_FALSE(fx.check(out, root)) << thc_char(symbol);
  }
}

TEST(HybridChecker, Level1UnanimousDeclineValid) {
  Fixture fx(2, 3, 2, 4);
  const NodeIndex host = fx.level2_host();
  const NodeIndex root = fx.h.down(host);
  auto out = fx.valid;
  // Decline the whole component below `host` (BFS over hierarchy links).
  std::vector<NodeIndex> stack{root};
  std::vector<NodeIndex> component;
  while (!stack.empty()) {
    const NodeIndex v = stack.back();
    stack.pop_back();
    out[v] = HybridOutput::symbol(ThcColor::D);
    component.push_back(v);
    for (const NodeIndex nb : {fx.h.lc(v), fx.h.rc(v)}) {
      if (nb != kNoNode && fx.h.level(nb) == 1) stack.push_back(nb);
    }
  }
  // The host can no longer be exempt: point it at the segment color instead.
  out[host] = HybridOutput::symbol(to_thc(fx.inst.labels.color[host]));
  for (const NodeIndex v : component) {
    EXPECT_TRUE(fx.check(out, v)) << v;
  }
}

TEST(HybridChecker, Level2ExemptionNeedsBtCertificate) {
  Fixture fx(3, 3, 2, 5);
  const NodeIndex host = fx.level2_host();
  const NodeIndex root = fx.h.down(host);
  auto out = fx.valid;
  ASSERT_EQ(out[host], HybridOutput::symbol(ThcColor::X));
  // Certificate present: valid.
  ASSERT_TRUE(fx.check(out, host));
  // Declined component: the X is no longer certified.
  out[root] = HybridOutput::symbol(ThcColor::D);
  EXPECT_FALSE(fx.check(out, host));
  // A THC color below does NOT certify level-2 exemption in Hybrid (the
  // certificate is specifically a BalancedTree output — Def. 6.1).
  out[root] = HybridOutput::symbol(ThcColor::R);
  EXPECT_FALSE(fx.check(out, host));
}

TEST(HybridChecker, LevelsAbove2FollowDef55) {
  Fixture fx(3, 3, 2, 6);
  // A level-3 (= k) node: D is forbidden (condition 5).
  NodeIndex top = kNoNode;
  for (NodeIndex v = 0; v < fx.inst.node_count(); ++v) {
    if (fx.inst.labels.level_in[v] == 3) {
      top = v;
      break;
    }
  }
  ASSERT_NE(top, kNoNode);
  auto out = fx.valid;
  out[top] = HybridOutput::symbol(ThcColor::D);
  EXPECT_FALSE(fx.check(out, top));
}

TEST(HybridChecker, BtOutputAboveLevel1Rejected) {
  Fixture fx(2, 3, 2, 7);
  const NodeIndex host = fx.level2_host();
  auto out = fx.valid;
  out[host] = HybridOutput::balanced({Balance::Balanced, 1});
  EXPECT_FALSE(fx.check(out, host));
}

TEST(HybridChecker, K2TopLevelMayDecline) {
  // Def. 6.1 routes level 2 through condition 4 even when k = 2, so a
  // whole-instance decline (level-1 D + level-2 D) is *valid* there —
  // unlike plain Hierarchical-THC(2), where level 2 = k forbids D.
  Fixture fx(2, 3, 2, 8);
  std::vector<HybridOutput> out(fx.inst.node_count(),
                                HybridOutput::symbol(ThcColor::D));
  HybridTHCProblem problem(fx.inst, 2);
  EXPECT_TRUE(verify_all(problem, fx.inst, out).ok);
}

}  // namespace
}  // namespace volcal
