// Differential test: the flat epoch-stamped Execution must preserve the
// exact query/cost semantics of Definitions 2.1-2.2 as implemented by the
// historical std::unordered_map Execution, preserved verbatim in
// runtime/reference_execution.hpp.  Two drivers:
//
//   1. a randomized query fuzzer issuing identical (node, port) sequences to
//      both implementations — including budgeted runs where both must throw
//      QueryBudgetExceeded at exactly the same step;
//   2. the paper's own algorithms (Prop. 3.9 nearest-leaf, Alg. 1 RWtoLeaf)
//      swept from every node over both implementations, comparing outputs
//      and all cost meters.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "runtime/execution.hpp"
#include "runtime/reference_execution.hpp"

namespace volcal {
namespace {

template <typename Exec>
struct StepOutcome {
  bool threw = false;
  NodeIndex discovered = kNoNode;
};

// Issues query(w, j) on one execution, normalizing the budget exception.
template <typename Exec>
StepOutcome<Exec> step(Exec& exec, NodeIndex w, Port j) {
  StepOutcome<Exec> out;
  try {
    out.discovered = exec.query(w, j);
  } catch (const QueryBudgetExceeded&) {
    out.threw = true;
  }
  return out;
}

void fuzz_against_reference(const Graph& g, const IdAssignment& ids, NodeIndex start,
                            std::int64_t budget, std::uint64_t seed, int steps) {
  Execution flat(g, ids, start, budget);
  ReferenceMapExecution ref(g, ids, start, budget);
  std::mt19937_64 rng(seed);
  // Visited pool maintained externally so both executions receive the exact
  // same query sequence.
  std::vector<NodeIndex> pool{start};
  for (int s = 0; s < steps; ++s) {
    const NodeIndex w = pool[rng() % pool.size()];
    const int deg = g.degree(w);
    if (deg == 0) break;
    const Port j = static_cast<Port>(1 + rng() % static_cast<std::uint64_t>(deg));
    const std::int64_t vol_before = flat.volume();
    const auto a = step(flat, w, j);
    const auto b = step(ref, w, j);
    ASSERT_EQ(a.threw, b.threw) << "budget divergence at step " << s;
    ASSERT_EQ(a.discovered, b.discovered) << "discovery divergence at step " << s;
    ASSERT_EQ(flat.volume(), ref.volume()) << "volume divergence at step " << s;
    ASSERT_EQ(flat.distance(), ref.distance()) << "distance divergence at step " << s;
    ASSERT_EQ(flat.query_count(), ref.query_count()) << "query divergence at step " << s;
    if (!a.threw && flat.volume() > vol_before) pool.push_back(a.discovered);
  }
  // Visited sets agree (the reference yields arbitrary hash order; sort both).
  auto va = flat.visited_nodes();
  auto vb = ref.visited_nodes();
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  EXPECT_EQ(va, vb);
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(flat.visited(v), ref.visited(v)) << "visited(" << v << ") diverged";
  }
}

TEST(ExecutionDiff, FuzzedQuerySequencesOnTrees) {
  auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    fuzz_against_reference(inst.graph, inst.ids, (seed * 17) % inst.node_count(),
                           /*budget=*/0, seed, 600);
  }
}

TEST(ExecutionDiff, FuzzedQuerySequencesOnPseudoForest) {
  auto inst = make_cycle_pseudotree(12, 4, 3);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    fuzz_against_reference(inst.graph, inst.ids, (seed * 5) % inst.node_count(),
                           /*budget=*/0, seed ^ 0xabc, 800);
  }
}

TEST(ExecutionDiff, FuzzedQuerySequencesOnRings) {
  auto ring = make_ring(64, 7);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    fuzz_against_reference(ring.graph, ring.ids, (seed * 11) % 64, /*budget=*/0, seed, 500);
  }
}

TEST(ExecutionDiff, BudgetedRunsThrowAtSameStep) {
  auto inst = make_random_full_binary_tree(201, 5);
  for (std::int64_t budget : {1, 2, 3, 5, 9, 17, 50}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      fuzz_against_reference(inst.graph, inst.ids, 0, budget, seed, 400);
    }
  }
}

TEST(ExecutionDiff, ExploreBallAgrees) {
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  for (NodeIndex v = 0; v < inst.node_count(); v += 5) {
    for (std::int64_t r = 0; r <= 4; ++r) {
      Execution flat(inst.graph, inst.ids, v);
      ReferenceMapExecution ref(inst.graph, inst.ids, v);
      const auto a = explore_ball(flat, r);
      const auto b = explore_ball(ref, r);
      EXPECT_EQ(a, b) << "ball order diverged at v=" << v << " r=" << r;
      EXPECT_EQ(flat.volume(), ref.volume());
      EXPECT_EQ(flat.distance(), ref.distance());
      EXPECT_EQ(flat.query_count(), ref.query_count());
    }
  }
}

TEST(ExecutionDiff, NearestLeafSolverAgreesFromEveryNode) {
  auto inst = make_complete_binary_tree(8, Color::Red, Color::Blue);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    Execution flat(inst.graph, inst.ids, v);
    ReferenceMapExecution ref(inst.graph, inst.ids, v);
    InstanceSource<ColoredTreeLabeling> src_a(inst, flat);
    InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src_b(inst, ref);
    EXPECT_EQ(leafcoloring_nearest_leaf(src_a), leafcoloring_nearest_leaf(src_b));
    EXPECT_EQ(flat.volume(), ref.volume());
    EXPECT_EQ(flat.distance(), ref.distance());
    EXPECT_EQ(flat.query_count(), ref.query_count());
  }
}

TEST(ExecutionDiff, RwToLeafAgreesFromEveryNode) {
  auto inst = make_random_full_binary_tree(301, 11);
  RandomTape tape_a(inst.ids, 42);
  RandomTape tape_b(inst.ids, 42);
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    Execution flat(inst.graph, inst.ids, v);
    ReferenceMapExecution ref(inst.graph, inst.ids, v);
    InstanceSource<ColoredTreeLabeling> src_a(inst, flat);
    InstanceSource<ColoredTreeLabeling, ReferenceMapExecution> src_b(inst, ref);
    EXPECT_EQ(rw_to_leaf(src_a, tape_a), rw_to_leaf(src_b, tape_b));
    EXPECT_EQ(flat.volume(), ref.volume());
    EXPECT_EQ(flat.distance(), ref.distance());
  }
  // Same algorithm, same tape values => same bit accounting.
  for (NodeIndex v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(tape_a.bits_used(v), tape_b.bits_used(v));
  }
}

}  // namespace
}  // namespace volcal
