// End-to-end integration: the Table-1 Θ-shapes, asserted (not just printed)
// at test scale.  This is the regression net over the whole pipeline —
// generators, solvers, cost accounting, and growth fitting together.
#include <gtest/gtest.h>

#include <cmath>

#include "labels/generators.hpp"
#include "lcl/algorithms/balanced_tree_algos.hpp"
#include "lcl/algorithms/hthc_algos.hpp"
#include "lcl/algorithms/hybrid_algos.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/algorithms/local_view.hpp"
#include "stats/growth.hpp"

namespace volcal {
namespace {

using stats::GrowthClass;

template <typename Fn>
std::pair<std::int64_t, std::int64_t> sup_costs(const Graph& g, const IdAssignment& ids,
                                                NodeIndex stride, Fn&& solve) {
  std::int64_t vol = 0, dist = 0;
  for (NodeIndex v = 0; v < g.node_count(); v += stride) {
    Execution exec(g, ids, v);
    solve(exec);
    vol = std::max(vol, exec.volume());
    dist = std::max(dist, exec.distance());
  }
  return {vol, dist};
}

TEST(Table1Shapes, LeafColoringRow) {
  std::vector<double> ns, ddist, dvol, rvol;
  for (int depth : {8, 10, 12, 14}) {
    auto inst = make_complete_binary_tree(depth, Color::Red, Color::Blue);
    ns.push_back(static_cast<double>(inst.node_count()));
    RandomTape tape(inst.ids, 3);
    auto [dv, dd] = sup_costs(inst.graph, inst.ids, inst.node_count() / 16 + 1,
                              [&](Execution& exec) {
                                InstanceSource<ColoredTreeLabeling> src(inst, exec);
                                leafcoloring_nearest_leaf(src);
                              });
    auto [rv, rd] = sup_costs(inst.graph, inst.ids, inst.node_count() / 64 + 1,
                              [&](Execution& exec) {
                                InstanceSource<ColoredTreeLabeling> src(inst, exec);
                                rw_to_leaf(src, tape);
                              });
    (void)rd;
    ddist.push_back(static_cast<double>(dd));
    dvol.push_back(static_cast<double>(dv));
    rvol.push_back(static_cast<double>(rv));
  }
  EXPECT_EQ(stats::classify_growth(ns, ddist).cls, GrowthClass::Log);
  EXPECT_EQ(stats::classify_growth(ns, dvol).cls, GrowthClass::Linear);
  EXPECT_EQ(stats::classify_growth(ns, rvol).cls, GrowthClass::Log);
}

TEST(Table1Shapes, BalancedTreeRow) {
  std::vector<double> ns, dist, vol;
  for (int depth : {7, 9, 11, 13}) {
    auto inst = make_balanced_instance(depth);
    ns.push_back(static_cast<double>(inst.node_count()));
    auto [v, d] = sup_costs(inst.graph, inst.ids, inst.node_count() / 12 + 1,
                            [&](Execution& exec) {
                              InstanceSource<BalancedTreeLabeling> src(inst, exec);
                              balancedtree_solve(src);
                            });
    dist.push_back(static_cast<double>(d));
    vol.push_back(static_cast<double>(v));
  }
  EXPECT_EQ(stats::classify_growth(ns, dist).cls, GrowthClass::Log);
  EXPECT_EQ(stats::classify_growth(ns, vol).cls, GrowthClass::Linear);
}

TEST(Table1Shapes, HierarchicalRowK2) {
  std::vector<double> ns, dist;
  for (NodeIndex b : {32, 64, 128, 256, 512}) {
    auto inst = make_hierarchical_instance(2, b, 3);
    auto cfg = HthcConfig::make(2, inst.node_count(), false, nullptr);
    ns.push_back(static_cast<double>(inst.node_count()));
    auto [v, d] = sup_costs(inst.graph, inst.ids, inst.node_count() / 12 + 1,
                            [&](Execution& exec) {
                              InstanceSource<ColoredTreeLabeling> src(inst, exec);
                              HthcSolver<InstanceSource<ColoredTreeLabeling>> s(src, cfg);
                              s.solve();
                            });
    (void)v;
    dist.push_back(static_cast<double>(d));
  }
  auto fit = stats::classify_growth(ns, dist);
  ASSERT_EQ(fit.cls, GrowthClass::PolyRoot) << fit.label;
  EXPECT_NEAR(fit.exponent, 0.5, 0.06);
}

TEST(Table1Shapes, HybridRowK2) {
  std::vector<double> ns, dist, rvol;
  for (const auto& [b, d] :
       std::vector<std::pair<NodeIndex, int>>{{16, 4}, {32, 5}, {64, 6}, {128, 7}}) {
    auto inst = make_hybrid_instance(2, b, d, 9);
    ns.push_back(static_cast<double>(inst.node_count()));
    RandomTape tape(inst.ids, 5);
    auto cfg = HybridConfig::make(2, inst.node_count());
    auto rcfg = HybridConfig::make(2, inst.node_count(), true, &tape);
    // Include a BalancedTree root (worst distance start).
    Hierarchy h(inst.graph, inst.labels.bal.tree, 3, inst.labels.level_in);
    NodeIndex bt_root = kNoNode;
    for (NodeIndex v = 0; v < inst.node_count() && bt_root == kNoNode; ++v) {
      if (inst.labels.level_in[v] == 2 && h.down(v) != kNoNode) bt_root = h.down(v);
    }
    std::int64_t dd = 0, rv = 0;
    for (NodeIndex v : {NodeIndex{0}, bt_root, inst.node_count() / 2}) {
      Execution e1(inst.graph, inst.ids, v);
      InstanceSource<HybridLabeling> s1(inst, e1);
      hybrid_solve_distance(s1, cfg);
      dd = std::max(dd, e1.distance());
      Execution e2(inst.graph, inst.ids, v);
      InstanceSource<HybridLabeling> s2(inst, e2);
      hybrid_solve_volume(s2, rcfg);
      rv = std::max(rv, e2.volume());
    }
    dist.push_back(static_cast<double>(dd));
    rvol.push_back(static_cast<double>(rv));
  }
  EXPECT_EQ(stats::classify_growth(ns, dist).cls, GrowthClass::Log);
  auto fit = stats::classify_growth(ns, rvol);
  ASSERT_EQ(fit.cls, GrowthClass::PolyRoot) << fit.label;
  EXPECT_NEAR(fit.exponent, 0.5, 0.1);
}

}  // namespace
}  // namespace volcal
