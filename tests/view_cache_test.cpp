// View-cache exactness contract (runtime/view_cache.hpp): a cached
// explore_ball must be bit-identical to the direct one — same discovery
// order, same volume/distance/query meters — under every service path (full
// prefix, shorter-radius prefix, deeper-radius resume, exhausted component),
// every policy, any thread count, and any eviction schedule.  Plus the
// ExecutionScratch epoch wrap-around regression and CacheConfig env parsing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/registry.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

struct BallObservation {
  std::vector<NodeIndex> order;
  std::int64_t volume = 0;
  std::int64_t distance = 0;
  std::int64_t queries = 0;

  friend bool operator==(const BallObservation&, const BallObservation&) = default;
};

// One fresh direct exploration — the ground truth the cache must reproduce.
BallObservation direct_ball(const Graph& g, const IdAssignment& ids, NodeIndex center,
                            std::int64_t radius) {
  Execution exec(g, ids, center);
  BallObservation obs;
  obs.order = explore_ball(exec, radius);
  obs.volume = exec.volume();
  obs.distance = exec.distance();
  obs.queries = exec.query_count();
  return obs;
}

BallObservation cached_ball(const Graph& g, const IdAssignment& ids, ViewCache& cache,
                            NodeIndex center, std::int64_t radius) {
  Execution exec(g, ids, center);
  exec.attach_view_cache(&cache);
  BallObservation obs;
  obs.order = explore_ball(exec, radius);
  obs.volume = exec.volume();
  obs.distance = exec.distance();
  obs.queries = exec.query_count();
  return obs;
}

TEST(ExecutionScratch, EpochWrapAroundDoesNotResurrectStamps) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  ExecutionScratch scratch(inst.node_count());
  // Place the counter so the next execution runs at epoch 2^64-1 and stamps
  // nodes with it...
  scratch.set_epoch_for_testing(std::numeric_limits<std::uint64_t>::max() - 1);
  {
    Execution exec(inst.graph, inst.ids, 0, 0, scratch);
    explore_ball(exec, 2);
    EXPECT_GT(exec.volume(), 1);
  }
  EXPECT_EQ(scratch.epoch_for_testing(), std::numeric_limits<std::uint64_t>::max());
  // ...so this begin() must take the wrap guard.  Without it the epoch would
  // wrap to 0 — the "never visited" stamp value — and every untouched slot
  // in the scratch would read as visited by the new execution.
  Execution exec(inst.graph, inst.ids, 0, 0, scratch);
  EXPECT_EQ(scratch.epoch_for_testing(), 1u);
  EXPECT_EQ(exec.volume(), 1);
  for (NodeIndex v = 1; v < inst.node_count(); ++v) {
    EXPECT_FALSE(exec.visited(v)) << "stale stamp resurrected at node " << v;
  }
  const auto ball4 = explore_ball(exec, 4);
  EXPECT_EQ(static_cast<std::int64_t>(ball4.size()), exec.volume());
}

// Every service path against ground truth, on a tree and on a graph with a
// cycle: miss -> full hit -> shorter-radius prefix -> deeper-radius resume ->
// exhausted-component service beyond the diameter.
TEST(ViewCache, ServesBitIdenticalBallsOnEveryPath) {
  const auto tree = make_complete_binary_tree(6, Color::Red, Color::Blue);
  const auto cycle = make_cycle_pseudotree(12, 3, /*seed=*/5);
  for (const LeafColoringInstance* inst : {&tree, &cycle}) {
    const Graph& g = inst->graph;
    ViewCache cache;
    for (const NodeIndex center : {NodeIndex{0}, g.node_count() / 2, g.node_count() - 1}) {
      for (const std::int64_t radius : {4, 4, 2, 6, 3, 64, 64, 0}) {
        const BallObservation expect = direct_ball(g, inst->ids, center, radius);
        const BallObservation got = cached_ball(g, inst->ids, cache, center, radius);
        EXPECT_EQ(expect, got) << "center " << center << " radius " << radius;
      }
    }
    const CacheStats stats = cache.stats();
    EXPECT_GT(stats.hits, 0);
    EXPECT_GT(stats.misses, 0);
    EXPECT_GT(stats.served_nodes, 0);
  }
}

TEST(ViewCache, EvictionKeepsResultsExactUnderTinyBudget) {
  const auto inst = make_random_full_binary_tree(601, /*seed=*/11);
  // A few KiB across 64 shards: every shard holds at most one small ball, so
  // stores continually evict.
  CacheConfig config;
  config.policy = CachePolicy::Shared;
  config.byte_budget = std::size_t{16} << 10;
  ViewCache cache(config);
  for (int round = 0; round < 3; ++round) {
    for (NodeIndex center = 0; center < inst.node_count(); center += 7) {
      const BallObservation expect = direct_ball(inst.graph, inst.ids, center, 5);
      EXPECT_EQ(expect, cached_ball(inst.graph, inst.ids, cache, center, 5));
    }
  }
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ViewCache, OversizedBallIsSkippedNotCorrupted) {
  const auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  CacheConfig config;
  config.policy = CachePolicy::Shared;
  config.byte_budget = 64;  // smaller than any ball entry
  ViewCache cache(config);
  const BallObservation expect = direct_ball(inst.graph, inst.ids, 0, 6);
  EXPECT_EQ(expect, cached_ball(inst.graph, inst.ids, cache, 0, 6));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ViewCache, InvalidateDropsEntriesAndBindSwitchesGraphs) {
  const auto a = make_complete_binary_tree(5, Color::Red, Color::Blue);
  const auto b = make_random_full_binary_tree(201, /*seed=*/3);
  ViewCache cache;
  cached_ball(a.graph, a.ids, cache, 0, 4);
  EXPECT_GT(cache.entry_count(), 0u);
  cache.invalidate();
  EXPECT_EQ(cache.entry_count(), 0u);
  const std::int64_t misses_before = cache.stats().misses;
  cached_ball(a.graph, a.ids, cache, 0, 4);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  // Re-binding to a different graph invalidates; results on the new graph
  // stay exact.
  cache.bind(b.graph);
  const BallObservation expect = direct_ball(b.graph, b.ids, 7, 5);
  EXPECT_EQ(expect, cached_ball(b.graph, b.ids, cache, 7, 5));
}

TEST(ViewCache, BudgetedExecutionsBypassTheCache) {
  const auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  ViewCache cache;
  // Warm the cache so a budgeted execution would find an entry if it looked.
  cached_ball(inst.graph, inst.ids, cache, 0, 6);
  const CacheStats warm = cache.stats();
  Execution exec(inst.graph, inst.ids, 0, /*budget=*/9);
  exec.attach_view_cache(&cache);
  EXPECT_EQ(exec.ball_cache_if_eligible(), nullptr);
  EXPECT_THROW(explore_ball(exec, 6), QueryBudgetExceeded);
  EXPECT_LE(exec.volume(), 9);
  const CacheStats after = cache.stats();
  EXPECT_EQ(warm.hits, after.hits);
  EXPECT_EQ(warm.misses, after.misses);
  // Non-fresh executions bypass too: after real queries the execution is no
  // longer servable from a ball prefix.
  Execution fresh(inst.graph, inst.ids, 0);
  fresh.attach_view_cache(&cache);
  EXPECT_NE(fresh.ball_cache_if_eligible(), nullptr);
  explore_ball(fresh, 1);
  EXPECT_EQ(fresh.ball_cache_if_eligible(), nullptr);
}

TEST(ViewCache, CacheConfigFromEnvParsing) {
  ASSERT_EQ(setenv("VOLCAL_CACHE", "shared", 1), 0);
  ASSERT_EQ(setenv("VOLCAL_CACHE_MB", "32", 1), 0);
  CacheConfig c = CacheConfig::from_env();
  EXPECT_EQ(c.policy, CachePolicy::Shared);
  EXPECT_EQ(c.byte_budget, std::size_t{32} << 20);
  ASSERT_EQ(setenv("VOLCAL_CACHE", "perstart", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().policy, CachePolicy::PerStart);
  ASSERT_EQ(setenv("VOLCAL_CACHE", "per-start", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().policy, CachePolicy::PerStart);
  ASSERT_EQ(setenv("VOLCAL_CACHE", "not-a-policy", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().policy, CachePolicy::Off);  // safe default
  ASSERT_EQ(setenv("VOLCAL_CACHE", "off", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().policy, CachePolicy::Off);
  ASSERT_EQ(unsetenv("VOLCAL_CACHE"), 0);
  ASSERT_EQ(unsetenv("VOLCAL_CACHE_MB"), 0);
  EXPECT_EQ(CacheConfig::from_env().policy, CachePolicy::Off);
}

// Misconfigured cache env vars keep their safe defaults but warn exactly
// once per variable (util/env.hpp): a typo'd policy or a non-numeric /
// non-positive budget used to be swallowed silently.
TEST(ViewCache, CacheConfigFromEnvWarnsOnMisconfiguration) {
  env::reset_warnings_for_testing();
  ASSERT_EQ(setenv("VOLCAL_CACHE", "sharde", 1), 0);
  ASSERT_EQ(setenv("VOLCAL_CACHE_MB", "lots", 1), 0);
  CacheConfig c = CacheConfig::from_env();
  EXPECT_EQ(c.policy, CachePolicy::Off);
  EXPECT_EQ(c.byte_budget, std::size_t{256} << 20);  // default kept
  EXPECT_EQ(env::warning_count_for_testing(), 2);
  // Re-reading does not warn again (one-time per variable per process).
  c = CacheConfig::from_env();
  EXPECT_EQ(env::warning_count_for_testing(), 2);

  env::reset_warnings_for_testing();
  ASSERT_EQ(unsetenv("VOLCAL_CACHE"), 0);
  ASSERT_EQ(setenv("VOLCAL_CACHE_MB", "0", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().byte_budget, std::size_t{256} << 20);
  ASSERT_EQ(setenv("VOLCAL_CACHE_MB", "-5", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().byte_budget, std::size_t{256} << 20);
  ASSERT_EQ(setenv("VOLCAL_CACHE_MB", "12junk", 1), 0);
  EXPECT_EQ(CacheConfig::from_env().byte_budget, std::size_t{256} << 20);
  EXPECT_EQ(env::warning_count_for_testing(), 1);  // same variable: once

  env::reset_warnings_for_testing();
  ASSERT_EQ(unsetenv("VOLCAL_CACHE"), 0);
  ASSERT_EQ(unsetenv("VOLCAL_CACHE_MB"), 0);
  CacheConfig d = CacheConfig::from_env();
  EXPECT_EQ(d.policy, CachePolicy::Off);
  EXPECT_EQ(d.byte_budget, std::size_t{256} << 20);
  EXPECT_EQ(env::warning_count_for_testing(), 0);  // unset is not an error
}

// --- Sweep-level equivalence: every registry family, every policy, 1 and 8
// --- threads, bit-identical to the uncached serial sweep.

CacheConfig policy_config(CachePolicy policy) {
  CacheConfig c;
  c.policy = policy;
  return c;
}

TEST(ViewCacheSweep, EveryRegistryFamilyIsPolicyAndThreadInvariant) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    SCOPED_TRACE(entry.name);
    const ErasedInstance inst = entry.make(300, /*seed=*/21);
    auto solver = [&](Execution& exec) { return inst.solve(exec); };
    const auto baseline = ParallelRunner(1, policy_config(CachePolicy::Off))
                              .run_at_all_nodes(inst.graph(), inst.ids(), solver);
    for (const CachePolicy policy :
         {CachePolicy::Off, CachePolicy::PerStart, CachePolicy::Shared}) {
      for (const int threads : {1, 8}) {
        const auto run = ParallelRunner(threads, policy_config(policy))
                             .run_at_all_nodes(inst.graph(), inst.ids(), solver);
        EXPECT_EQ(baseline.output, run.output)
            << cache_policy_name(policy) << " @ " << threads << " threads";
        EXPECT_EQ(baseline.volume, run.volume);
        EXPECT_EQ(baseline.distance, run.distance);
        EXPECT_EQ(baseline.queries, run.queries);
        EXPECT_TRUE(same_costs(baseline.stats, run.stats));
        EXPECT_EQ(run.stats.cache.policy, policy);
      }
    }
  }
}

TEST(ViewCacheSweep, SharedPolicyHitsOnRepeatedStarts) {
  const auto inst = make_complete_binary_tree(8, Color::Red, Color::Blue);
  const std::vector<NodeIndex> starts{0, 0, 0, 5, 5, 9, 0, 5, 9, 9};
  auto solver = [](Execution& exec) {
    return static_cast<int>(explore_ball(exec, 4).size());
  };
  const auto off = ParallelRunner(1, policy_config(CachePolicy::Off))
                       .run_at(inst.graph, inst.ids, starts, solver);
  for (const int threads : {1, 8}) {
    const auto shared = ParallelRunner(threads, policy_config(CachePolicy::Shared))
                            .run_at(inst.graph, inst.ids, starts, solver);
    EXPECT_EQ(off.output, shared.output);
    EXPECT_TRUE(same_costs(off.stats, shared.stats));
    EXPECT_EQ(shared.stats.cache.hits + shared.stats.cache.misses,
              static_cast<std::int64_t>(starts.size()));
    // 3 distinct centers; under parallel workers concurrent first touches of
    // one center can both miss, so the exact split is serial-only.
    EXPECT_GE(shared.stats.cache.misses, 3);
    if (threads == 1) {
      EXPECT_EQ(shared.stats.cache.misses, 3);
      EXPECT_EQ(shared.stats.cache.hits, 7);
      EXPECT_GT(shared.stats.cache.served_nodes, 0);
    }
  }
  // PerStart scopes the cache to one start: the same sweep is structurally
  // hit-free (each start's single explore_ball misses its fresh cache) — the
  // bisection rung between Off and Shared.
  const auto per_start = ParallelRunner(1, policy_config(CachePolicy::PerStart))
                             .run_at(inst.graph, inst.ids, starts, solver);
  EXPECT_EQ(off.output, per_start.output);
  EXPECT_TRUE(same_costs(off.stats, per_start.stats));
  EXPECT_EQ(per_start.stats.cache.hits, 0);
  EXPECT_EQ(per_start.stats.cache.misses,
            static_cast<std::int64_t>(starts.size()));
}

TEST(ViewCacheSweep, AttachedPersistentCacheServesAcrossSweeps) {
  const auto inst = make_complete_binary_tree(8, Color::Red, Color::Blue);
  auto solver = [](Execution& exec) {
    return static_cast<int>(explore_ball(exec, 4).size());
  };
  ViewCache cache(policy_config(CachePolicy::Shared));
  ParallelRunner runner(2, policy_config(CachePolicy::Shared));
  runner.attach_cache(&cache);
  const auto cold = runner.run_at_all_nodes(inst.graph, inst.ids, solver);
  EXPECT_EQ(cold.stats.cache.hits, 0);
  EXPECT_EQ(cold.stats.cache.misses, inst.node_count());
  const auto warm = runner.run_at_all_nodes(inst.graph, inst.ids, solver);
  EXPECT_EQ(warm.stats.cache.hits, inst.node_count());
  EXPECT_EQ(warm.stats.cache.misses, 0);
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_TRUE(same_costs(cold.stats, warm.stats));
}

// Recording sinks must take the direct path: a trace contains every query,
// so a served ball would record nothing.  The traced sweep still returns
// bit-identical outputs/costs, and the sweep cache sees zero traffic.
TEST(ViewCacheSweep, TracedSweepsBypassTheCache) {
  const auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  const std::vector<NodeIndex> starts{0, 0, 3, 3, 11, 11};
  auto solver = [](auto& exec) {
    return static_cast<int>(explore_ball(exec, 3).size());
  };
  const auto plain = ParallelRunner(1, policy_config(CachePolicy::Off))
                         .run_at(inst.graph, inst.ids, starts, solver);
  ParallelRunner shared_runner(2, policy_config(CachePolicy::Shared));
  obs::TraceRecorder recorder;
  const auto traced = obs::run_at_traced(shared_runner, inst.graph, inst.ids, starts,
                                         solver, recorder);
  EXPECT_EQ(plain.output, traced.output);
  EXPECT_TRUE(same_costs(plain.stats, traced.stats));
  EXPECT_EQ(traced.stats.cache.hits, 0);
  EXPECT_EQ(traced.stats.cache.misses, 0);
  // Every execution's trace holds its full query sequence.
  ASSERT_EQ(recorder.traces().size(), starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(recorder.traces()[i].events.size()),
              plain.queries[i]);
  }
}

// --- Storage-identity tokens (the pointer-ABA regression) ------------------

// Simulates munmap/mmap address reuse across a snapshot swap: two different
// graphs occupy the *same* CSR storage addresses in turn, with a persistent
// cache attached across the swap.  Under the old pointer-valued
// storage_identity() the cache believed the second graph was the first and
// served graph A's ball for graph B; token identity mints a fresh token per
// adoption, so the rebind invalidates and the cache rebuilds.
TEST(ViewCache, RemapAtSameAddressDoesNotServeStaleBalls) {
  auto build = [](std::initializer_list<std::pair<NodeIndex, NodeIndex>> edges) {
    Graph::Builder b(4);
    for (auto [v, w] : edges) b.add_edge(v, w);
    return std::move(b).build();
  };
  // Same degree sequence (so the offsets arrays are byte-identical), but the
  // ball around node 0 differs: {0,1} on A vs {0,2} on B.
  const Graph a = build({{0, 1}, {1, 2}, {2, 3}});
  const Graph b = build({{0, 2}, {2, 1}, {1, 3}});
  const GraphView av = a.view();
  const GraphView bv = b.view();
  ASSERT_EQ(av.node_count(), bv.node_count());
  ASSERT_EQ(av.edge_count(), bv.edge_count());

  // The shared storage both graphs occupy in turn — fixed addresses, exactly
  // what a recycled mmap region looks like to the cache.
  std::vector<std::size_t> off(av.offsets_data(), av.offsets_data() + 5);
  std::vector<NodeIndex> adj(av.adjacency_data(), av.adjacency_data() + 6);
  const IdAssignment ids = IdAssignment::sequential(4);
  ViewCache cache(policy_config(CachePolicy::Shared));

  {
    Graph first =
        Graph::adopt(GraphView(off.data(), adj.data(), 4, av.max_degree()));
    const BallObservation warm = cached_ball(first, ids, cache, 0, 1);
    EXPECT_EQ(warm, direct_ball(a, ids, 0, 1));
    EXPECT_EQ(cache.stats().misses, 1);
  }

  // The swap: graph B's bytes land at the same addresses.
  std::copy(bv.offsets_data(), bv.offsets_data() + 5, off.begin());
  std::copy(bv.adjacency_data(), bv.adjacency_data() + 6, adj.begin());
  Graph second =
      Graph::adopt(GraphView(off.data(), adj.data(), 4, bv.max_degree()));
  ASSERT_NE(second.view().storage_identity(), kAnonymousStorage);

  const BallObservation swapped = cached_ball(second, ids, cache, 0, 1);
  EXPECT_EQ(swapped, direct_ball(b, ids, 0, 1))
      << "cache served a stale ball from the pre-swap graph (pointer ABA)";
}

// The hot-swap store race: a worker that snapshotted the old target, passed
// bind()'s fast path, and only then lost a rebind race captures its epoch
// *after* the swap's invalidation — so the epoch check alone would let it
// park old-graph balls at the post-swap epoch, where serve_costs would hand
// them out for the new graph.  store() must validate the storage token the
// ball was computed against and drop the stale store.
TEST(ViewCache, StoreRejectsStaleBindingAtThePostSwapEpoch) {
  const auto a = make_complete_binary_tree(5, Color::Red, Color::Blue);
  const auto b = make_random_full_binary_tree(201, /*seed=*/3);
  ViewCache cache(policy_config(CachePolicy::Shared));
  cache.bind(a.graph.view());
  const StorageToken stale = a.graph.view().storage_identity();

  // The concurrent swap the worker lost against, then the worker's (too
  // late) epoch capture — exactly the interleaving of the race.
  cache.bind(b.graph.view());
  const std::uint64_t epoch = cache.epoch();

  CachedBall ball;  // "computed on A" — the token is the identity that counts
  ball.order = {0};
  ball.level_end = {1};
  ball.cum_queries = {0};
  cache.store(0, std::move(ball), epoch, stale);
  EXPECT_EQ(cache.entry_count(), 0u)
      << "old-graph ball stored at the post-swap epoch";
  BallCosts costs;
  EXPECT_FALSE(cache.serve_costs(b.graph.view(), 0, 0, &costs))
      << "stale ball served for the new graph";

  // The same store tagged with the *current* binding's token is accepted and
  // served — the rejection above was the token check, not a broken store().
  CachedBall fresh;
  fresh.order = {0};
  fresh.level_end = {1};
  fresh.cum_queries = {0};
  cache.store(0, std::move(fresh), cache.epoch(),
              b.graph.view().storage_identity());
  EXPECT_EQ(cache.entry_count(), 1u);
  ASSERT_TRUE(cache.serve_costs(b.graph.view(), 0, 0, &costs));
  EXPECT_EQ(costs.volume, 1);
  EXPECT_EQ(costs.queries, 0);

  // Anonymous storage can never be a store identity.
  CachedBall anon;
  anon.order = {1};
  anon.level_end = {1};
  anon.cum_queries = {0};
  cache.store(1, std::move(anon), cache.epoch(), kAnonymousStorage);
  EXPECT_EQ(cache.entry_count(), 1u);
}

// --- Region invalidation (dynamic graphs) ----------------------------------

// A path graph gives exact control over old-graph distances: rewiring the far
// end leaf touches {0, N-2, N-1}, so a center c's distance to the touched set
// is min(c, N-2-c).  A ball of depth R is certified exactly when that
// distance exceeds R: distance == R evicts, distance == R + 1 (beyond the
// bounded BFS horizon) retains.
TEST(ViewCacheRegion, EvictsAtMaxRadiusRetainsBeyondIt) {
  constexpr NodeIndex kNodes = 24;
  constexpr std::int64_t kRadius = 3;
  Graph::Builder builder(kNodes);
  for (NodeIndex v = 0; v + 1 < kNodes; ++v) builder.add_edge(v, v + 1);
  const Graph path = std::move(builder).build();
  const IdAssignment ids = IdAssignment::sequential(kNodes);

  MutationBatch batch;
  batch.rewires.push_back({kNodes - 1, 0});  // re-hang the far leaf on node 0
  const AppliedMutation applied = apply_mutation(path.view(), batch);
  ASSERT_EQ(applied.touched, (std::vector<NodeIndex>{0, kNodes - 2, kNodes - 1}));

  ViewCache cache(policy_config(CachePolicy::Shared));
  cache.bind(path.view());
  // Warm: distances to the touched set are 0, 3 (== R, evict), 4 (== R + 1,
  // retain), 11 (deep interior, retain).
  for (const NodeIndex center : {NodeIndex{0}, NodeIndex{3}, NodeIndex{4}, NodeIndex{11}}) {
    cached_ball(path, ids, cache, center, kRadius);
  }
  ASSERT_EQ(cache.entry_count(), 4u);

  const ViewCache::RegionInvalidation inv = cache.invalidate_region(
      path.view(), applied.touched, kRadius, applied.graph.view().storage_identity());
  EXPECT_FALSE(inv.fell_back_to_flush);
  EXPECT_EQ(inv.evicted, 2u);   // centers 0 and 3
  EXPECT_EQ(inv.retained, 2u);  // centers 4 and 11
  EXPECT_EQ(cache.entry_count(), 2u);

  // Retained balls serve the post-mutation graph bit-identically to a cold
  // exploration of it; the evicted centers miss.
  BallCosts costs;
  for (const NodeIndex center : {NodeIndex{4}, NodeIndex{11}}) {
    ASSERT_TRUE(cache.serve_costs(applied.graph.view(), center, kRadius, &costs))
        << "center " << center;
    const BallObservation fresh = direct_ball(applied.graph, ids, center, kRadius);
    EXPECT_EQ(costs.volume, fresh.volume) << "center " << center;
    EXPECT_EQ(costs.distance, fresh.distance);
    EXPECT_EQ(costs.queries, fresh.queries);
  }
  EXPECT_FALSE(cache.serve_costs(applied.graph.view(), 0, kRadius, &costs));
  EXPECT_FALSE(cache.serve_costs(applied.graph.view(), 3, kRadius, &costs));
}

// Multi-rewire batches certify against the union of their endpoints: the
// bounded BFS is multi-source, so a center is evicted when ANY touched node
// is within its depth.
TEST(ViewCacheRegion, MultiTouchBatchEvictsAroundEveryEndpoint) {
  constexpr NodeIndex kNodes = 30;
  constexpr std::int64_t kRadius = 2;
  Graph::Builder builder(kNodes);
  for (NodeIndex v = 0; v + 1 < kNodes; ++v) builder.add_edge(v, v + 1);
  const Graph path = std::move(builder).build();
  const IdAssignment ids = IdAssignment::sequential(kNodes);

  // Both end leaves re-hung onto interior nodes: touched =
  // {0, 1, 14, 15, 28, 29}.
  MutationBatch batch;
  batch.rewires.push_back({0, 14});
  batch.rewires.push_back({kNodes - 1, 15});
  const AppliedMutation applied = apply_mutation(path.view(), batch);
  ASSERT_EQ(applied.touched,
            (std::vector<NodeIndex>{0, 1, 14, 15, kNodes - 2, kNodes - 1}));

  ViewCache cache(policy_config(CachePolicy::Shared));
  cache.bind(path.view());
  // dist(4) = 3 > R (retain); dist(12) = 2 == R (evict — middle touch);
  // dist(26) = 2 == R (evict — far-end touch); dist(25) = 3 (retain).
  for (const NodeIndex center :
       {NodeIndex{4}, NodeIndex{12}, NodeIndex{25}, NodeIndex{26}}) {
    cached_ball(path, ids, cache, center, kRadius);
  }
  ASSERT_EQ(cache.entry_count(), 4u);
  const ViewCache::RegionInvalidation inv = cache.invalidate_region(
      path.view(), applied.touched, kRadius, applied.graph.view().storage_identity());
  EXPECT_FALSE(inv.fell_back_to_flush);
  EXPECT_EQ(inv.evicted, 2u);
  EXPECT_EQ(inv.retained, 2u);
  BallCosts costs;
  EXPECT_TRUE(cache.serve_costs(applied.graph.view(), 4, kRadius, &costs));
  EXPECT_TRUE(cache.serve_costs(applied.graph.view(), 25, kRadius, &costs));
  EXPECT_FALSE(cache.serve_costs(applied.graph.view(), 12, kRadius, &costs));
  EXPECT_FALSE(cache.serve_costs(applied.graph.view(), 26, kRadius, &costs));

  // A label-only batch has no structural endpoints: nothing is evicted, the
  // binding still moves to the new token.
  ViewCache label_cache(policy_config(CachePolicy::Shared));
  label_cache.bind(path.view());
  cached_ball(path, ids, label_cache, 7, kRadius);
  const ViewCache::RegionInvalidation none = label_cache.invalidate_region(
      path.view(), {}, kRadius, applied.graph.view().storage_identity());
  EXPECT_FALSE(none.fell_back_to_flush);
  EXPECT_EQ(none.evicted, 0u);
  EXPECT_EQ(none.retained, 1u);
}

// The StorageToken handshake around a region invalidation: retained entries
// are re-stamped to the new token (the old view can no longer be served),
// stores tagged with the old token are rejected by the moved binding, and an
// invalidation against a cache bound elsewhere degrades to the full flush.
TEST(ViewCacheRegion, TokenSwapRejectsStaleStoresAndOldViewLookups) {
  constexpr NodeIndex kNodes = 16;
  Graph::Builder builder(kNodes);
  for (NodeIndex v = 0; v + 1 < kNodes; ++v) builder.add_edge(v, v + 1);
  const Graph path = std::move(builder).build();
  const IdAssignment ids = IdAssignment::sequential(kNodes);
  MutationBatch batch;
  batch.rewires.push_back({kNodes - 1, 0});
  const AppliedMutation applied = apply_mutation(path.view(), batch);

  ViewCache cache(policy_config(CachePolicy::Shared));
  cache.bind(path.view());
  cached_ball(path, ids, cache, 7, 2);  // dist to touched = 7: retained
  const std::uint64_t epoch = cache.epoch();
  const ViewCache::RegionInvalidation inv = cache.invalidate_region(
      path.view(), applied.touched, 2, applied.graph.view().storage_identity());
  ASSERT_EQ(inv.retained, 1u);

  // The retained entry now belongs to the new graph: lookups through the old
  // view must miss (its token no longer matches the entry).
  BallCosts costs;
  EXPECT_FALSE(cache.serve_costs(path.view(), 7, 2, &costs));
  EXPECT_TRUE(cache.serve_costs(applied.graph.view(), 7, 2, &costs));

  // A worker that raced the invalidation and computed its ball on the old
  // graph cannot park it: store() validates against the moved binding.  The
  // epoch did NOT change — region invalidation never bumps it — so this is
  // purely the token check.
  EXPECT_EQ(cache.epoch(), epoch);
  CachedBall stale;
  stale.order = {3};
  stale.level_end = {1};
  stale.cum_queries = {0};
  cache.store(3, std::move(stale), epoch, path.view().storage_identity());
  EXPECT_EQ(cache.entry_count(), 1u) << "old-graph ball stored past the token swap";

  // Bound-elsewhere precondition: a cache not bound to old_view's token
  // cannot certify anything and must flush.
  ViewCache wrong(policy_config(CachePolicy::Shared));
  wrong.bind(applied.graph.view());
  cached_ball(applied.graph, ids, wrong, 7, 2);
  ASSERT_EQ(wrong.entry_count(), 1u);
  const ViewCache::RegionInvalidation flushed = wrong.invalidate_region(
      path.view(), applied.touched, 2, applied.graph.view().storage_identity());
  EXPECT_TRUE(flushed.fell_back_to_flush);
  EXPECT_EQ(wrong.entry_count(), 0u);
}

TEST(ViewCache, StorageTokenSemantics) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  const GraphView v = inst.graph.view();
  EXPECT_NE(v.storage_identity(), kAnonymousStorage);
  // Views of the same Graph share its identity; a bare view over raw arrays
  // is anonymous; owned-storage copies are new storage, adopted copies alias.
  EXPECT_EQ(inst.graph.view().storage_identity(), v.storage_identity());
  const GraphView raw(v.offsets_data(), v.adjacency_data(), v.node_count(),
                      v.max_degree());
  EXPECT_EQ(raw.storage_identity(), kAnonymousStorage);
  const Graph owned_copy = inst.graph;  // copies the CSR arrays
  EXPECT_NE(owned_copy.view().storage_identity(), v.storage_identity());
  const Graph adopted = Graph::adopt(v);
  EXPECT_EQ(adopted.view().storage_identity(), v.storage_identity());
  const Graph adopted_copy = adopted;  // aliases the same storage
  EXPECT_EQ(adopted_copy.view().storage_identity(), v.storage_identity());

  // Anonymous views are uncacheable: the cache must neither bind to them nor
  // serve them (it could not tell two anonymous graphs apart).  Exploring
  // through the cache with anonymous storage stays exact via the direct path
  // and leaves the cache untouched.
  ViewCache cache(policy_config(CachePolicy::Shared));
  cache.bind(raw);
  BallCosts costs;
  EXPECT_FALSE(cache.serve_costs(raw, 0, 2, &costs));
  Execution exec(raw, inst.ids, 0);
  exec.attach_view_cache(&cache);
  const auto order = explore_ball(exec, 2);
  const BallObservation direct = direct_ball(inst.graph, inst.ids, 0, 2);
  EXPECT_EQ(order, direct.order);
  EXPECT_EQ(exec.volume(), direct.volume);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.entry_count(), 0u);
}

}  // namespace
}  // namespace volcal
