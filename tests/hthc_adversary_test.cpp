#include "lcl/adversary/hthc_adversary.hpp"

#include <gtest/gtest.h>

#include "lcl/algorithms/hthc_algos.hpp"
#include "runtime/randomness.hpp"

namespace volcal {
namespace {

// ---------------------------------------------------------------------------
// Source mechanics
// ---------------------------------------------------------------------------

TEST(HthcAdversarySource, SpawnRulesAndPorts) {
  HthcAdversarySource src(3, 1000, 100);
  const NodeIndex seed = src.make_seed(3, Color::Blue);
  EXPECT_EQ(src.level_of(seed), 3);
  EXPECT_EQ(src.degree(seed), 3);
  // RC descends one level; LC stays; P stays and builds upward.
  const NodeIndex rc = src.query(seed, 3);
  EXPECT_EQ(src.level_of(rc), 2);
  const NodeIndex rc1 = src.query(rc, 3);
  EXPECT_EQ(src.level_of(rc1), 1);
  EXPECT_EQ(src.degree(rc1), 2);  // level-1 interior: P + LC only
  EXPECT_EQ(src.right_port(rc1), kNoPort);
  const NodeIndex lc = src.query(seed, 2);
  EXPECT_EQ(src.level_of(lc), 3);
  EXPECT_EQ(src.query(lc, 1), seed);  // parent acknowledged
  const NodeIndex up = src.query(seed, 1);
  EXPECT_EQ(src.level_of(up), 3);
  EXPECT_EQ(src.query(up, 2), seed);  // we are the new parent's LC
  // Re-queries return the same nodes.
  EXPECT_EQ(src.query(seed, 3), rc);
  EXPECT_EQ(src.query(seed, 2), lc);
}

TEST(HthcAdversarySource, LeafAppendAndChain) {
  HthcAdversarySource src(2, 1000, 100);
  const NodeIndex seed = src.make_seed(2, Color::Red);
  NodeIndex cur = seed;
  for (int i = 0; i < 4; ++i) cur = src.query(cur, 2);
  const NodeIndex tail = src.backbone_tail(seed);
  EXPECT_EQ(tail, cur);
  const NodeIndex leaf = src.append_leaf(tail, Color::Blue);
  EXPECT_TRUE(src.is_leaf_node(leaf));
  EXPECT_EQ(src.color(leaf), Color::Blue);
  EXPECT_EQ(src.degree(leaf), 2);          // P + RC at level 2
  EXPECT_EQ(src.left_port(leaf), kNoPort);  // leaves have no LC
  EXPECT_EQ(src.right_port(leaf), 2);
  const auto chain = src.chain(seed, leaf);
  EXPECT_EQ(chain.size(), 6u);
  EXPECT_EQ(chain.front(), seed);
  EXPECT_EQ(chain.back(), leaf);
}

TEST(HthcAdversarySource, BudgetBinds) {
  HthcAdversarySource src(2, 1000, 4);
  const NodeIndex seed = src.make_seed(2, Color::Red);
  NodeIndex cur = seed;
  cur = src.query(cur, 2);
  cur = src.query(cur, 2);
  cur = src.query(cur, 2);
  EXPECT_THROW(src.query(cur, 2), QueryBudgetExceeded);
}

// ---------------------------------------------------------------------------
// The duel: every halting strategy is convicted; exhaustive strategies pay.
// ---------------------------------------------------------------------------

TEST(HthcDuel, AlwaysDeclineConvictedAtTop) {
  HthcCandidate always_d = [](HthcAdversarySource&) { return ThcColor::D; };
  auto result = duel_hthc_adversary(always_d, 3, 10000, 3000);
  ASSERT_TRUE(result.defeated) << result.verdict;
  EXPECT_EQ(result.defeat_level, 3);
}

TEST(HthcDuel, AlwaysExemptConvictedAtLevelOne) {
  HthcCandidate always_x = [](HthcAdversarySource&) { return ThcColor::X; };
  auto result = duel_hthc_adversary(always_x, 4, 10000, 3000);
  ASSERT_TRUE(result.defeated) << result.verdict;
  EXPECT_EQ(result.defeat_level, 1);  // X is pushed down the phases to level 1
}

TEST(HthcDuel, EchoOwnColorConvictedByLeafTrick) {
  HthcCandidate echo = [](HthcAdversarySource& s) { return to_thc(s.color(s.start())); };
  for (int k : {2, 3}) {
    auto result = duel_hthc_adversary(echo, k, 10000, 3000);
    ASSERT_TRUE(result.defeated) << "k=" << k << ": " << result.verdict;
    EXPECT_EQ(result.defeat_level, k);
  }
}

TEST(HthcDuel, ConstantColorConvicted) {
  HthcCandidate blue = [](HthcAdversarySource&) { return ThcColor::B; };
  auto result = duel_hthc_adversary(blue, 2, 10000, 3000);
  ASSERT_TRUE(result.defeated) << result.verdict;
  // The leaf (input red, since the backbone answered B) echoes B: condition 2.
  EXPECT_EQ(result.defeat_level, 2);
}

TEST(HthcDuel, DeterministicRecursiveSolverPaysLinearVolume) {
  // The paper's own deterministic algorithm cannot answer cheaply against
  // the adversary: every scan step recursively explores a fresh deep
  // component, so the budget binds — the executable content of Ω̃(n).
  HthcCandidate alg2 = [](HthcAdversarySource& s) {
    auto cfg = HthcConfig::make(2, s.n(), false, nullptr);
    HthcSolver<HthcAdversarySource> solver(s, cfg);
    return solver.solve();
  };
  const std::int64_t n = 4096;
  auto result = duel_hthc_adversary(alg2, 2, n, n / 3);
  EXPECT_TRUE(result.exceeded_budget) << result.verdict;
  EXPECT_GE(result.nodes_spawned, n / 3);
}

TEST(HthcDuel, CoinAwareAdversaryDefeatsWaypointSolver) {
  // Prop. 5.14's guarantee is whp over coins for a FIXED instance; against
  // an adversary that adapts after the coins are fixed the waypoint solver
  // halts cheaply and commits to a decline the completion contradicts —
  // quantifier order matters.
  // k = 2 keeps the sampling probability well below 1 at this n (for larger
  // k the polylog factors need n beyond unit-test scale).
  auto ids = IdAssignment::sequential(100000);
  RandomTape tape(ids, 7);
  HthcCandidate waypoint = [&tape](HthcAdversarySource& s) {
    auto cfg = HthcConfig::make(2, s.n(), true, &tape, /*c=*/0.5);
    HthcSolver<HthcAdversarySource> solver(s, cfg);
    return solver.solve();
  };
  auto result = duel_hthc_adversary(waypoint, 2, 100000, 50000);
  EXPECT_TRUE(result.defeated) << result.verdict;
  EXPECT_FALSE(result.exceeded_budget);
}

// ---------------------------------------------------------------------------
// Materialization: the adaptively-built structure completes into a
// well-formed instance on which the committed outputs provably violate the
// real checker at the recorded witness node(s).
// ---------------------------------------------------------------------------

TEST(HthcMaterialize, CompletionPreservesRevealedStructure) {
  HthcAdversarySource src(3, 10000, 500);
  const NodeIndex seed = src.make_seed(3, Color::Blue);
  // Reveal a little of everything.
  NodeIndex cur = seed;
  for (int i = 0; i < 5; ++i) cur = src.query(cur, 2);
  const NodeIndex mid = src.query(seed, 3);
  src.query(mid, 3);
  src.query(seed, 1);
  const auto revealed = src.nodes_spawned();

  auto inst = src.materialize();
  ASSERT_GE(inst.node_count(), revealed);
  // Levels of revealed nodes survive the completion.
  Hierarchy h(inst.graph, inst.labels.tree, 4);
  for (NodeIndex v = 0; v < revealed; ++v) {
    EXPECT_EQ(h.level(v), src.level_of(v)) << v;
  }
  // Degrees match what the algorithm was told.
  for (NodeIndex v = 0; v < revealed; ++v) {
    EXPECT_EQ(inst.graph.degree(v), src.degree(v)) << v;
  }
}

TEST(HthcMaterialize, DefeatVerifiedOnCompletedInstance) {
  // Drive the adversary manually so the same source can be materialized.
  HthcCandidate echo = [](HthcAdversarySource& s) { return to_thc(s.color(s.start())); };
  auto result = duel_hthc_adversary(echo, 2, 20000, 6000);
  ASSERT_TRUE(result.defeated);

  // Replay the committed outputs onto the materialized instance of a second,
  // identical duel (the process is deterministic, so the transcript and the
  // structure coincide).
  HthcAdversarySource src(2, 20000, 6000);
  {
    // Reproduce the driver's interaction exactly by re-running the duel
    // against this source through the internal sequence: simulate at each
    // committed node in order.
    for (const auto& [node, out] : result.committed) {
      if (node == 0 && src.nodes_spawned() == 0) src.make_seed(2, Color::Blue);
      if (node >= src.nodes_spawned()) {
        // Nodes created by adversary controls (leaf appends) — recreate with
        // the input color the echo output reveals.
        src.append_leaf(src.backbone_tail(0),
                        out == ThcColor::R ? Color::Red : Color::Blue);
      }
      src.set_start(node);
      const ThcColor replayed = echo(src);
      EXPECT_EQ(replayed, out) << "node " << node;
    }
  }
  auto inst = src.materialize();
  HierarchicalTHCProblem problem(inst, 2);
  std::vector<ThcColor> output(inst.node_count(), ThcColor::D);
  for (const auto& [node, out] : result.committed) output[node] = out;
  // The upper witness of the adjacent pair reads only committed outputs:
  // its invalidity holds on the real completed instance no matter how the
  // never-simulated nodes would answer.
  EXPECT_FALSE(problem.valid_at(inst, output, result.witness_a));
}

TEST(HthcDuel, SimulationCountStaysLogarithmic) {
  // The binary-search phases use O(k log m) simulations.
  HthcCandidate echo = [](HthcAdversarySource& s) { return to_thc(s.color(s.start())); };
  auto result = duel_hthc_adversary(echo, 3, 100000, 30000);
  ASSERT_TRUE(result.defeated);
  EXPECT_LE(result.simulations, 64);
}

}  // namespace
}  // namespace volcal
