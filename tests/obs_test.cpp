// Observability layer: trace sinks, replay oracle, sweep metrics, exporters.
//
// The load-bearing claims tested here:
//  * recording is invisible — a traced sweep produces bit-identical outputs
//    and costs to the untraced one;
//  * traces are deterministic at any thread count (disjoint preassigned
//    slots, same argument as the runner's output slots);
//  * a recorded trace replays bit-identically against a fresh Execution,
//    including budget truncation — and a tampered trace is rejected;
//  * SweepMetrics totals equal the engine's SweepStats, and histograms fold
//    the per-start slot vectors exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "labels/generators.hpp"
#include "lcl/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_runner.hpp"

namespace volcal {
namespace {

std::vector<NodeIndex> every_node(NodeIndex n) {
  std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
  for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
  return starts;
}

// --- recording is invisible -------------------------------------------------

TEST(Trace, TracedSweepMatchesUntracedBitForBit) {
  auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  const auto starts = every_node(inst.node_count());
  auto solver = [](auto& exec) {
    explore_ball(exec, 3);
    return exec.volume();
  };
  auto plain = ParallelRunner(1).run_at(inst.graph, inst.ids,
                                        std::span<const NodeIndex>(starts), solver);
  obs::TraceRecorder recorder;
  auto traced = obs::run_at_traced(ParallelRunner(1), inst.graph, inst.ids,
                                   std::span<const NodeIndex>(starts), solver, recorder);
  EXPECT_EQ(plain.output, traced.output);
  EXPECT_EQ(plain.volume, traced.volume);
  EXPECT_EQ(plain.distance, traced.distance);
  EXPECT_EQ(plain.queries, traced.queries);
  EXPECT_TRUE(same_costs(plain.stats, traced.stats));
}

TEST(Trace, DeterministicAcrossThreadCounts) {
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  const auto starts = every_node(inst.node_count());
  auto solver = [](auto& exec) {
    explore_ball(exec, 2);
    return 0;
  };
  obs::TraceRecorder serial, parallel;
  obs::run_at_traced(ParallelRunner(1), inst.graph, inst.ids,
                     std::span<const NodeIndex>(starts), solver, serial);
  obs::run_at_traced(ParallelRunner(8), inst.graph, inst.ids,
                     std::span<const NodeIndex>(starts), solver, parallel);
  ASSERT_EQ(serial.traces().size(), parallel.traces().size());
  EXPECT_EQ(serial.traces(), parallel.traces());
}

// --- replay oracle ----------------------------------------------------------

TEST(Replay, RoundTripsEveryRegistryEntry) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    const ErasedInstance inst = entry.make(/*n_target=*/300, /*seed=*/17);
    const auto starts = every_node(inst.node_count());
    obs::TraceRecorder recorder;
    auto run = obs::run_at_traced(ParallelRunner(2), inst.graph(), inst.ids(),
                                  std::span<const NodeIndex>(starts),
                                  [&](auto& exec) { return inst.solve(exec); }, recorder);
    EXPECT_TRUE(inst.verify(run.output).ok) << entry.name;
    const obs::ReplayReport report =
        obs::replay_sweep(inst.graph(), inst.ids(), recorder.traces());
    EXPECT_TRUE(report.ok) << entry.name << ": " << report.error;
    EXPECT_EQ(report.probes, run.stats.total_queries) << entry.name;
  }
}

TEST(Replay, ReproducesBudgetTruncation) {
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  const auto starts = every_node(inst.node_count());
  const std::int64_t budget = 5;
  obs::TraceRecorder recorder;
  auto run = obs::run_at_traced(
      ParallelRunner(1), inst.graph, inst.ids, std::span<const NodeIndex>(starts),
      [](auto& exec) {
        explore_ball(exec, 10);  // wants the whole graph: blows the budget
        return 0;
      },
      recorder, budget);
  ASSERT_GT(run.stats.truncated, 0);
  bool saw_truncated = false;
  for (const auto& t : recorder.traces()) {
    if (t.truncated) {
      saw_truncated = true;
      EXPECT_NE(t.truncated_at_node, kNoNode);
      EXPECT_NE(t.truncated_at_port, kNoPort);
    }
  }
  ASSERT_TRUE(saw_truncated);
  const auto report = obs::replay_sweep(inst.graph, inst.ids, recorder.traces(), budget);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(Replay, RejectsTamperedTrace) {
  auto inst = make_complete_binary_tree(5, Color::Red, Color::Blue);
  obs::TraceRecorder recorder;
  const std::vector<NodeIndex> starts{0};
  obs::run_at_traced(
      ParallelRunner(1), inst.graph, inst.ids, std::span<const NodeIndex>(starts),
      [](auto& exec) {
        explore_ball(exec, 3);
        return 0;
      },
      recorder);
  ASSERT_FALSE(recorder.traces()[0].events.empty());

  obs::ExecutionTrace tampered = recorder.traces()[0];
  tampered.events[1].found_id += 1;
  EXPECT_FALSE(obs::replay_trace(inst.graph, inst.ids, tampered).ok);

  tampered = recorder.traces()[0];
  tampered.final_volume += 1;
  EXPECT_FALSE(obs::replay_trace(inst.graph, inst.ids, tampered).ok);

  tampered = recorder.traces()[0];
  tampered.events[0].volume += 1;
  EXPECT_FALSE(obs::replay_trace(inst.graph, inst.ids, tampered).ok);
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, TotalsEqualEngineSweepStats) {
  auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  const auto starts = every_node(inst.node_count());
  auto run = ParallelRunner(4).run_at(inst.graph, inst.ids,
                                      std::span<const NodeIndex>(starts),
                                      [](Execution& exec) {
                                        explore_ball(exec, 4);
                                        return 0;
                                      });
  obs::SweepMetrics metrics;
  metrics.observe(run);
  EXPECT_EQ(metrics.sweeps, 1);
  EXPECT_TRUE(same_costs(metrics.stats, run.stats));
  EXPECT_EQ(metrics.volume_hist.count, run.stats.starts);
  EXPECT_EQ(metrics.volume_hist.sum, run.stats.total_volume);
  EXPECT_EQ(metrics.volume_hist.max, run.stats.max_volume);
  EXPECT_EQ(metrics.distance_hist.max, run.stats.max_distance);
  EXPECT_EQ(metrics.queries_hist.sum, run.stats.total_queries);
}

TEST(Metrics, LogHistogramBucketsAndMerge) {
  using obs::LogHistogram;
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3);
  EXPECT_EQ(LogHistogram::bucket_of(1023), 10);
  EXPECT_EQ(LogHistogram::bucket_of(1024), 11);

  LogHistogram a, b, ab, ba;
  for (std::int64_t v : {0, 1, 5, 100}) a.add(v);
  for (std::int64_t v : {7, 2048}) b.add(v);
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // merge is order-independent
  EXPECT_EQ(ab.count, 6);
  EXPECT_EQ(ab.min, 0);
  EXPECT_EQ(ab.max, 2048);
  EXPECT_EQ(ab.sum, 0 + 1 + 5 + 100 + 7 + 2048);
}

TEST(Metrics, MetricsDeterministicAcrossThreadCounts) {
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  const auto starts = every_node(inst.node_count());
  auto solver = [](Execution& exec) {
    explore_ball(exec, 3);
    return 0;
  };
  auto serial = ParallelRunner(1).run_at(inst.graph, inst.ids,
                                         std::span<const NodeIndex>(starts), solver);
  auto parallel = ParallelRunner(8).run_at(inst.graph, inst.ids,
                                           std::span<const NodeIndex>(starts), solver);
  obs::SweepMetrics m1, m8;
  m1.observe(serial);
  m8.observe(parallel);
  // Every deterministic field agrees (wall-clock fields are left unpopulated
  // because no profile was attached).
  EXPECT_TRUE(same_costs(m1.stats, m8.stats));
  EXPECT_EQ(m1.volume_hist, m8.volume_hist);
  EXPECT_EQ(m1.distance_hist, m8.distance_hist);
  EXPECT_EQ(m1.queries_hist, m8.queries_hist);
}

// --- exporters --------------------------------------------------------------

TEST(Exporters, JsonlAndChromeFilesHaveExpectedShape) {
  auto inst = make_complete_binary_tree(4, Color::Red, Color::Blue);
  const auto starts = every_node(inst.node_count());
  obs::TraceRecorder recorder;
  SweepProfile profile;
  obs::run_at_traced(
      ParallelRunner(1), inst.graph, inst.ids, std::span<const NodeIndex>(starts),
      [](auto& exec) {
        explore_ball(exec, 2);
        return 0;
      },
      recorder, /*budget=*/0, /*tape=*/nullptr, &profile);
  obs::SweepTrace sweep;
  sweep.label = "obs_test/sweep-0";
  sweep.n = inst.node_count();
  sweep.traces = recorder.traces();
  sweep.profile = profile;
  const std::vector<obs::SweepTrace> sweeps{sweep};

  const std::string jsonl = testing::TempDir() + "obs_test_trace.jsonl";
  const std::string chrome = testing::TempDir() + "obs_test_chrome.json";
  ASSERT_TRUE(obs::write_trace_jsonl(jsonl, sweeps));
  ASSERT_TRUE(obs::write_chrome_trace(chrome, sweeps));

  std::ifstream jf(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(jf, line));
  EXPECT_NE(line.find("\"type\":\"sweep\""), std::string::npos);
  EXPECT_NE(line.find("\"label\":\"obs_test/sweep-0\""), std::string::npos);
  std::int64_t execs = 0, queries = 0;
  while (std::getline(jf, line)) {
    if (line.find("\"type\":\"exec\"") != std::string::npos) ++execs;
    if (line.find("\"type\":\"query\"") != std::string::npos) ++queries;
  }
  EXPECT_EQ(execs, inst.node_count());
  std::int64_t recorded = 0;
  for (const auto& t : recorder.traces()) {
    recorded += static_cast<std::int64_t>(t.events.size());
  }
  EXPECT_EQ(queries, recorded);

  std::ifstream cf(chrome);
  std::stringstream buf;
  buf << cf.rdbuf();
  const std::string doc = buf.str();
  EXPECT_EQ(doc.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(chrome.c_str());
}

}  // namespace
}  // namespace volcal
