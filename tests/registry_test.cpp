// Problem registry: the string-keyed catalogue behind the benches' --filter
// flag.  Every entry must produce a valid instance whose erased solver yields
// a verify_all-clean joint output, identically on plain and traced
// executions, deterministically in (n_target, seed).
#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>
#include <vector>

#include "lcl/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_runner.hpp"

namespace volcal {
namespace {

std::vector<NodeIndex> every_node(NodeIndex n) {
  std::vector<NodeIndex> starts(static_cast<std::size_t>(n));
  for (NodeIndex v = 0; v < n; ++v) starts[static_cast<std::size_t>(v)] = v;
  return starts;
}

TEST(Registry, CataloguesTheExpectedFamilies) {
  const auto& reg = ProblemRegistry::global();
  ASSERT_GE(reg.entries().size(), 6u);
  std::set<std::string> names;
  for (const auto& e : reg.entries()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate name " << e.name;
    EXPECT_FALSE(e.title.empty()) << e.name;
    EXPECT_FALSE(e.theta.empty()) << e.name;
    EXPECT_TRUE(static_cast<bool>(e.make)) << e.name;
  }
  for (const char* expected :
       {"leaf-coloring", "balanced-tree", "hthc-2", "hthc-3", "hybrid-2", "hh-2-3"}) {
    EXPECT_TRUE(names.count(expected)) << "missing entry " << expected;
  }
}

TEST(Registry, FindAndMatchSemantics) {
  const auto& reg = ProblemRegistry::global();
  const RegistryEntry* leaf = reg.find("leaf-coloring");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->name, "leaf-coloring");
  EXPECT_EQ(reg.find("no-such-problem"), nullptr);

  // match() is substring-based; empty matches everything.
  EXPECT_EQ(reg.match("").size(), reg.entries().size());
  EXPECT_EQ(reg.match("hthc").size(), 2u);
  EXPECT_EQ(reg.match("hh-2-3").size(), 1u);
  EXPECT_TRUE(reg.match("zzz-nothing").empty());
}

TEST(Registry, EveryEntrySolvesAndVerifies) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    const ErasedInstance inst = entry.make(/*n_target=*/400, /*seed=*/5);
    ASSERT_GT(inst.node_count(), 0) << entry.name;
    EXPECT_EQ(inst.graph().node_count(), inst.node_count()) << entry.name;

    const auto starts = every_node(inst.node_count());
    auto run = ParallelRunner(4).run_at(inst.graph(), inst.ids(),
                                        std::span<const NodeIndex>(starts),
                                        [&](Execution& exec) { return inst.solve(exec); });
    const VerifyResult verdict = inst.verify(run.output);
    EXPECT_TRUE(verdict.ok) << entry.name << ": " << verdict.violations
                            << " violations, first at node " << verdict.first_bad;
    EXPECT_GT(run.stats.max_volume, 0) << entry.name;
  }
}

TEST(Registry, TracedAndPlainSolversAgree) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    const ErasedInstance inst = entry.make(/*n_target=*/250, /*seed=*/23);
    const auto starts = every_node(inst.node_count());
    auto plain = ParallelRunner(1).run_at(inst.graph(), inst.ids(),
                                          std::span<const NodeIndex>(starts),
                                          [&](Execution& exec) { return inst.solve(exec); });
    obs::TraceRecorder recorder;
    auto traced = obs::run_at_traced(
        ParallelRunner(1), inst.graph(), inst.ids(), std::span<const NodeIndex>(starts),
        [&](auto& exec) { return inst.solve(exec); }, recorder);
    EXPECT_EQ(plain.output, traced.output) << entry.name;
    EXPECT_EQ(plain.volume, traced.volume) << entry.name;
    EXPECT_EQ(plain.distance, traced.distance) << entry.name;
    EXPECT_TRUE(same_costs(plain.stats, traced.stats)) << entry.name;
  }
}

TEST(Registry, MakeIsDeterministicInTargetAndSeed) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    const ErasedInstance a = entry.make(300, 7);
    const ErasedInstance b = entry.make(300, 7);
    ASSERT_EQ(a.node_count(), b.node_count()) << entry.name;

    const auto starts = every_node(a.node_count());
    auto ra = ParallelRunner(1).run_at(a.graph(), a.ids(), std::span<const NodeIndex>(starts),
                                       [&](Execution& exec) { return a.solve(exec); });
    auto rb = ParallelRunner(1).run_at(b.graph(), b.ids(), std::span<const NodeIndex>(starts),
                                       [&](Execution& exec) { return b.solve(exec); });
    EXPECT_EQ(ra.output, rb.output) << entry.name;
    EXPECT_TRUE(same_costs(ra.stats, rb.stats)) << entry.name;
  }
}

TEST(Registry, EveryVariantSolvesAndVerifies) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    ASSERT_GE(entry.variants, 2) << entry.name << ": families need shape mutators";
    ASSERT_TRUE(static_cast<bool>(entry.make_variant)) << entry.name;
    for (int variant = 0; variant < entry.variants; ++variant) {
      const ErasedInstance inst = entry.make_variant(300, /*seed=*/11, variant);
      ASSERT_GT(inst.node_count(), 0) << entry.name << " v" << variant;
      const auto starts = every_node(inst.node_count());
      auto run = ParallelRunner(2).run_at(inst.graph(), inst.ids(),
                                          std::span<const NodeIndex>(starts),
                                          [&](Execution& exec) { return inst.solve(exec); });
      const VerifyResult verdict = inst.verify(run.output);
      EXPECT_TRUE(verdict.ok) << entry.name << " v" << variant << ": "
                              << verdict.violations << " violations, first at node "
                              << verdict.first_bad;
    }
  }
}

TEST(Registry, VariantZeroIsMake) {
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    const ErasedInstance a = entry.make(260, 9);
    const ErasedInstance b = entry.make_variant(260, 9, 0);
    ASSERT_EQ(a.node_count(), b.node_count()) << entry.name;
    const auto starts = every_node(a.node_count());
    auto ra = ParallelRunner(1).run_at(a.graph(), a.ids(), std::span<const NodeIndex>(starts),
                                       [&](Execution& exec) { return a.solve(exec); });
    auto rb = ParallelRunner(1).run_at(b.graph(), b.ids(), std::span<const NodeIndex>(starts),
                                       [&](Execution& exec) { return b.solve(exec); });
    EXPECT_EQ(ra.output, rb.output) << entry.name;
    EXPECT_TRUE(same_costs(ra.stats, rb.stats)) << entry.name;
  }
}

TEST(Registry, VariantsPerturbTheShape) {
  // A mutator that returns the canonical instance under another number would
  // give the fuzzer false coverage; demand some observable difference.  Most
  // variants change the graph itself (node count or degrees); label-only
  // perturbations (e.g. balanced-tree's unbalanced defect, which reshapes
  // claims on the same skeleton) must at least change the solved outputs.
  for (const RegistryEntry& entry : ProblemRegistry::global().entries()) {
    for (int variant = 1; variant < entry.variants; ++variant) {
      const ErasedInstance canon = entry.make_variant(300, 13, 0);
      const ErasedInstance mut = entry.make_variant(300, 13, variant);
      bool differs = canon.node_count() != mut.node_count();
      if (!differs) {
        for (NodeIndex v = 0; v < canon.node_count() && !differs; ++v) {
          differs = canon.graph().degree(v) != mut.graph().degree(v);
        }
      }
      if (!differs) {
        const auto starts = every_node(canon.node_count());
        auto rc = ParallelRunner(1).run_at(canon.graph(), canon.ids(),
                                           std::span<const NodeIndex>(starts),
                                           [&](Execution& exec) { return canon.solve(exec); });
        auto rm = ParallelRunner(1).run_at(mut.graph(), mut.ids(),
                                           std::span<const NodeIndex>(starts),
                                           [&](Execution& exec) { return mut.solve(exec); });
        differs = rc.output != rm.output;
      }
      EXPECT_TRUE(differs) << entry.name << " v" << variant
                           << " is indistinguishable from the canonical instance";
    }
  }
}

TEST(Registry, NTargetScalesInstances) {
  const RegistryEntry* entry = ProblemRegistry::global().find("hthc-2");
  ASSERT_NE(entry, nullptr);
  const ErasedInstance small = entry->make(200, 3);
  const ErasedInstance large = entry->make(3000, 3);
  EXPECT_LT(small.node_count(), large.node_count());
}

}  // namespace
}  // namespace volcal
