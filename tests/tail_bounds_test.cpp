// Monte-Carlo verification of the tail bounds the paper's randomized
// analyses rest on (Section 2.6): the Chernoff bounds of Lemma 2.11 and the
// negative-binomial bound of Lemma 2.12 (the engine of the RWtoLeaf claim in
// Prop. 3.10 and of Lemmas 5.16/5.18).
#include <gtest/gtest.h>

#include <cmath>

#include "util/hash.hpp"

namespace volcal {
namespace {

double bernoulli_sum_tail_upper(double p, int m, double threshold, int trials,
                                std::uint64_t seed) {
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    int sum = 0;
    for (int i = 0; i < m; ++i) {
      sum += to_unit_double(mix64(seed, t, i)) < p ? 1 : 0;
    }
    hits += sum >= threshold ? 1 : 0;
  }
  return static_cast<double>(hits) / trials;
}

TEST(Lemma211, UpperChernoffBoundHolds) {
  // Pr(Y >= (1+δ)µ) <= exp(-µδ²/3) for independent Bernoulli sums.
  const double p = 0.5;
  const int m = 200;
  const double mu = p * m;
  for (const double delta : {0.2, 0.4, 0.8}) {
    const double bound = std::exp(-mu * delta * delta / 3);
    const double observed =
        bernoulli_sum_tail_upper(p, m, (1 + delta) * mu, 4000, 12345);
    EXPECT_LE(observed, bound + 0.02) << "delta " << delta;
  }
}

TEST(Lemma211, LowerChernoffBoundHolds) {
  // Pr(Y <= (1-δ)µ) <= exp(-µδ²/2).
  const double p = 0.5;
  const int m = 200;
  const double mu = p * m;
  for (const double delta : {0.2, 0.4, 0.8}) {
    const double bound = std::exp(-mu * delta * delta / 2);
    int hits = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      int sum = 0;
      for (int i = 0; i < m; ++i) {
        sum += to_unit_double(mix64(777, t, i)) < p ? 1 : 0;
      }
      hits += sum <= (1 - delta) * mu ? 1 : 0;
    }
    EXPECT_LE(static_cast<double>(hits) / trials, bound + 0.02) << delta;
  }
}

TEST(Lemma212, NegativeBinomialTailHolds) {
  // N ~ N(k, p): Pr(N > c·k/p) <= exp(-k(c-1)²/(2c)) — exactly the bound the
  // RWtoLeaf claim instantiates with k = log n, p = 1/2, c = 8.
  const double p = 0.5;
  const int k = 12;
  for (const double c : {2.0, 4.0, 8.0}) {
    const double bound = std::exp(-k * (c - 1) * (c - 1) / (2 * c));
    const auto cutoff = static_cast<int>(c * k / p);
    int hits = 0;
    const int trials = 5000;
    for (int t = 0; t < trials; ++t) {
      int successes = 0, draws = 0;
      while (successes < k && draws <= cutoff) {
        successes += to_unit_double(mix64(999, t, draws)) < p ? 1 : 0;
        ++draws;
      }
      hits += successes < k ? 1 : 0;  // needed more than cutoff draws
    }
    EXPECT_LE(static_cast<double>(hits) / trials, bound + 0.02) << "c " << c;
  }
}

TEST(Lemma212, Prop310Instantiation) {
  // The claim inside Prop. 3.10: a walk that crosses a good edge (probability
  // >= 1/2 per step) collects log n good edges within 16 log n steps except
  // with probability < n^{-3}.  At n = 4096 (log n = 12) the Monte-Carlo
  // failure rate over 20000 trials must be zero for the bound to be credible
  // (n^{-3} ≈ 1.5e-11).
  const int logn = 12;
  const int cutoff = 16 * logn;
  int failures = 0;
  for (int t = 0; t < 20000; ++t) {
    int good = 0, steps = 0;
    while (good < logn && steps < cutoff) {
      good += (mix64(4242, t, steps) & 1) ? 1 : 0;
      ++steps;
    }
    failures += good < logn ? 1 : 0;
  }
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace volcal
