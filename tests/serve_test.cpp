// Query-service layer (src/serve/): wire protocol, admission control, drain
// ordering, latency accounting, and the end-to-end hot-swap exactness the
// token-based storage identity exists for.
//
// The load-bearing contract: a label served by QueryService equals the
// offline engine's output for that node, bit for bit — through the batched
// backend, through cache hits, and across snapshot swaps (where the old
// pointer-keyed cache identity could alias a recycled mmap address; see
// tests/view_cache_test.cpp RemapAtSameAddressDoesNotServeStaleBalls for the
// unit-level pin).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/runtime.hpp"
#include "volcal/serve.hpp"

namespace volcal::serve {
namespace {

namespace fs = std::filesystem;

TEST(ServeProtocol, FramesRoundTripThroughAChunkedStream) {
  QueryFrame q;
  q.request_id = 0x1122334455667788ull;
  q.node = -7;
  ResultFrame r;
  r.request_id = 42;
  r.status = QueryStatus::InvalidNode;
  r.node = 1;
  r.label = -3;
  r.volume = 1LL << 40;
  r.distance = 4;
  r.queries = 99;
  r.latency_ns = 123456789;
  ShedFrame s;
  s.request_id = 7;
  s.retry_after_ms = 50;
  ByeFrame b;
  b.reason = 0;

  std::vector<std::uint8_t> stream;
  for (const auto& bytes :
       {encode_query(q), encode_result(r), encode_shed(s), encode_bye(b)}) {
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  // Feed one byte at a time: the reader must buffer partials across reads.
  FrameReader reader;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    Frame f;
    while (reader.next(&f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_FALSE(reader.corrupt());

  EXPECT_EQ(frames[0].type, FrameType::Query);
  EXPECT_EQ(frames[0].query.request_id, q.request_id);
  EXPECT_EQ(frames[0].query.node, q.node);

  EXPECT_EQ(frames[1].type, FrameType::Result);
  EXPECT_EQ(frames[1].result.request_id, r.request_id);
  EXPECT_EQ(frames[1].result.status, QueryStatus::InvalidNode);
  EXPECT_EQ(frames[1].result.label, r.label);
  EXPECT_EQ(frames[1].result.volume, r.volume);
  EXPECT_EQ(frames[1].result.distance, r.distance);
  EXPECT_EQ(frames[1].result.queries, r.queries);
  EXPECT_EQ(frames[1].result.latency_ns, r.latency_ns);

  EXPECT_EQ(frames[2].type, FrameType::Shed);
  EXPECT_EQ(frames[2].shed.request_id, s.request_id);
  EXPECT_EQ(frames[2].shed.retry_after_ms, s.retry_after_ms);

  EXPECT_EQ(frames[3].type, FrameType::Bye);
  EXPECT_EQ(frames[3].bye.reason, 0);
}

TEST(ServeProtocol, OversizedOrMalformedFramesMarkTheStreamCorrupt) {
  {
    // Declared length beyond kMaxFrameBytes: corruption, not a frame.
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, static_cast<std::uint32_t>(kMaxFrameBytes + 1));
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
  {
    // Right length prefix, wrong payload size for the type.
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, 3);
    wire::put_u8(bytes, static_cast<std::uint8_t>(FrameType::Query));
    wire::put_u8(bytes, 0);
    wire::put_u8(bytes, 0);
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
}

// Collects completion callbacks so tests can wait for a specific number of
// responses while the service is still running.
class ResultCollector {
 public:
  std::function<void(const QueryResult&)> sink() {
    return [this](const QueryResult& r) {
      std::lock_guard lock(mu_);
      results_[r.request_id] = r;
      cv_.notify_all();
    };
  }

  void wait_for(std::size_t count) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return results_.size() >= count; });
  }

  std::map<std::uint64_t, QueryResult> take() {
    std::lock_guard lock(mu_);
    return results_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, QueryResult> results_;
};

std::vector<int> offline_labels(const ErasedInstance& inst) {
  const auto sweep = run_at_all_nodes(inst.graph(), inst.ids(),
                                      [&](Execution& e) { return inst.solve(e); });
  return sweep.output;
}

ServeTarget target_for(const std::string& family, NodeIndex n, std::uint64_t seed) {
  const RegistryEntry* entry = ProblemRegistry::global().find(family);
  EXPECT_NE(entry, nullptr) << family;
  return make_serve_target(
      std::make_shared<const ErasedInstance>(entry->make(n, seed)));
}

// Served labels == offline sweep labels, on both execution paths.  The
// ball-4 family takes the fused batched path (its plan is batchable), the
// leaf-coloring family the per-request solve() path.
TEST(QueryService, ServedLabelsMatchTheOfflineSweep) {
  for (const char* family : {"ball-4", "leaf-coloring"}) {
    SCOPED_TRACE(family);
    ServeTarget target = target_for(family, 600, 7);
    const std::vector<int> expected = offline_labels(*target.instance);
    const auto n = static_cast<std::int64_t>(expected.size());

    ServeConfig config;
    config.threads = 4;
    config.queue_capacity = static_cast<std::size_t>(2 * n);
    config.cache.policy = CachePolicy::Shared;
    QueryService service(std::move(target), config);

    ResultCollector collector;
    // Two rounds over every node: the second is served warm (cache hits for
    // the batchable family) and must answer identically.
    for (std::int64_t round = 0; round < 2; ++round) {
      for (std::int64_t v = 0; v < n; ++v) {
        const auto id = static_cast<std::uint64_t>(round * n + v);
        ASSERT_EQ(service.submit(id, v, collector.sink()), Admission::Accepted);
      }
    }
    service.drain_and_stop();

    const auto results = collector.take();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(2 * n));
    for (const auto& [id, r] : results) {
      const auto v = static_cast<std::int64_t>(id) % n;
      EXPECT_EQ(r.status, QueryStatus::Ok);
      EXPECT_EQ(r.label, expected[static_cast<std::size_t>(v)])
          << "node " << v << " id " << id;
      EXPECT_GE(r.volume, 1);
      EXPECT_GE(r.latency_ns, 0);
    }
    const ServeCounters counters = service.counters();
    EXPECT_EQ(counters.accepted, 2 * n);
    EXPECT_EQ(counters.completed, 2 * n);
    EXPECT_EQ(counters.shed, 0);
    EXPECT_EQ(counters.invalid, 0);
    if (std::string(family) == "ball-4") {
      // Round two re-queries every center: the shared cache must have hits.
      EXPECT_GT(service.cache_stats().hits, 0);
    }
    const stats::Summary latency = service.latency_summary();
    EXPECT_EQ(latency.count, static_cast<std::size_t>(2 * n));
    EXPECT_LE(latency.median, latency.p95);
    EXPECT_LE(latency.p95, latency.p99);
  }
}

TEST(QueryService, InvalidNodesAreFlaggedNotExecuted) {
  ServeTarget target = target_for("ball-4", 200, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 1;
  QueryService service(std::move(target), config);

  ResultCollector collector;
  ASSERT_EQ(service.submit(1, -1, collector.sink()), Admission::Accepted);
  ASSERT_EQ(service.submit(2, n, collector.sink()), Admission::Accepted);
  ASSERT_EQ(service.submit(3, 0, collector.sink()), Admission::Accepted);
  service.drain_and_stop();

  const auto results = collector.take();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.at(1).status, QueryStatus::InvalidNode);
  EXPECT_EQ(results.at(2).status, QueryStatus::InvalidNode);
  EXPECT_EQ(results.at(1).label, 0);
  EXPECT_EQ(results.at(3).status, QueryStatus::Ok);
  EXPECT_EQ(service.counters().invalid, 2);
}

// Deterministic shed: block the single worker inside a completion callback,
// fill the queue to capacity, and the next submit must shed.
TEST(QueryService, ShedsWhenTheQueueIsFullAndRecovers) {
  ServeTarget target = target_for("ball-4", 200, 7);
  ServeConfig config;
  config.threads = 1;
  config.batch_max = 1;  // the worker holds exactly one request at a time
  config.queue_capacity = 2;
  QueryService service(std::move(target), config);

  std::promise<void> worker_entered;
  std::promise<void> release_worker;
  std::shared_future<void> release = release_worker.get_future().share();
  ASSERT_EQ(service.submit(0, 0,
                           [&](const QueryResult&) {
                             worker_entered.set_value();
                             release.wait();
                           }),
            Admission::Accepted);
  worker_entered.get_future().wait();  // the worker is now parked off-queue

  ResultCollector collector;
  EXPECT_EQ(service.submit(1, 1, collector.sink()), Admission::Accepted);
  EXPECT_EQ(service.submit(2, 2, collector.sink()), Admission::Accepted);
  // Queue holds 2/2: admission control must shed, not grow the backlog.
  EXPECT_EQ(service.submit(3, 3, collector.sink()), Admission::Shed);
  EXPECT_EQ(service.counters().shed, 1);

  release_worker.set_value();
  service.drain_and_stop();
  // The shed request never ran; both accepted ones did.
  const auto results = collector.take();
  EXPECT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.count(1) == 1 && results.count(2) == 1);
  const ServeCounters counters = service.counters();
  EXPECT_EQ(counters.accepted, 3);
  EXPECT_EQ(counters.completed, 3);
}

// Drain ordering: every accepted callback has run by the time
// drain_and_stop() returns, and later submits are Stopped (not Shed — the
// client must not retry).
TEST(QueryService, DrainCompletesEveryAcceptedRequestThenRefuses) {
  ServeTarget target = target_for("ball-4", 400, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = static_cast<std::size_t>(n);
  QueryService service(std::move(target), config);

  std::atomic<int> completions{0};
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v,
                             [&](const QueryResult&) {
                               completions.fetch_add(1, std::memory_order_relaxed);
                             }),
              Admission::Accepted);
  }
  service.drain_and_stop();
  EXPECT_EQ(completions.load(), n);
  EXPECT_EQ(service.submit(999999, 0, nullptr), Admission::Stopped);
  // Idempotent: a second drain is a no-op.
  service.drain_and_stop();
}

// The end-to-end ABA scenario the storage token fixes: serve snapshot A,
// hot-swap to snapshot B of the same shape (old mapping unmapped, new one
// plausibly at the recycled address), and every post-swap answer must match
// B's offline labels — never A's cached balls.
TEST(QueryService, HotSwapUnderWarmCacheServesTheNewSnapshotExactly) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("volcal-serve-test-" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::create_directories(dir);
  const std::string path_a = (dir / "a.vsnap").string();
  const std::string path_b = (dir / "b.vsnap").string();

  // ball-4 labels are pure ball volumes, and the default instance shape is a
  // complete binary tree whose structure ignores the seed — so use variant 1
  // (random full binary tree), where seeds 7 and 11 shape different trees.
  const RegistryEntry* entry = ProblemRegistry::global().find("ball-4");
  ASSERT_NE(entry, nullptr);
  entry->make_variant(600, 7, 1).save_snapshot(path_a);
  entry->make_variant(600, 11, 1).save_snapshot(path_b);

  ServeConfig config;
  config.threads = 4;
  config.queue_capacity = 4096;
  config.cache.policy = CachePolicy::Shared;

  std::vector<int> expected_a, expected_b;
  {
    const ErasedInstance a = io::load_instance(path_a);
    expected_a = offline_labels(a);
    const ErasedInstance b = io::load_instance(path_b);
    expected_b = offline_labels(b);
  }
  const auto n = static_cast<std::int64_t>(expected_a.size());
  ASSERT_EQ(expected_b.size(), static_cast<std::size_t>(n));
  // Seeds 7 and 11 must disagree somewhere, or the swap check is vacuous.
  ASSERT_NE(expected_a, expected_b);

  QueryService service(
      make_serve_target(
          std::make_shared<const ErasedInstance>(io::load_instance(path_a))),
      config);

  // Warm the cache on A across every node.
  ResultCollector before;
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v, before.sink()),
              Admission::Accepted);
  }
  before.wait_for(static_cast<std::size_t>(n));
  for (const auto& [id, r] : before.take()) {
    ASSERT_EQ(r.label, expected_a[static_cast<std::size_t>(id)]) << "node " << id;
  }

  // Swap to B while the service is live.  The old target's mapping is
  // released here (no other holder), so B's mmap may land on A's address —
  // the exact pointer-ABA recycling the token identity defends against.
  service.swap_target(make_serve_target(
      std::make_shared<const ErasedInstance>(io::load_instance(path_b))));

  ResultCollector after;
  for (std::int64_t v = 0; v < n; ++v) {
    const auto id = static_cast<std::uint64_t>(n + v);
    ASSERT_EQ(service.submit(id, v, after.sink()), Admission::Accepted);
  }
  service.drain_and_stop();
  const auto results = after.take();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(n));
  for (const auto& [id, r] : results) {
    const auto v = static_cast<std::int64_t>(id) - n;
    ASSERT_EQ(r.label, expected_b[static_cast<std::size_t>(v)])
        << "post-swap node " << v << " served a stale answer";
  }
  EXPECT_EQ(service.counters().swaps, 1);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// --- Socket transport ------------------------------------------------------

std::string unique_socket_path(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("volcal-") + tag + "-" +
           std::to_string(::getpid()) + "-" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           ".sock"))
      .string();
}

// Disconnected clients must be reaped as they leave, not accumulated until
// stop(): a long-running server otherwise leaks one fd + thread object per
// connection ever accepted and eventually hits EMFILE.
TEST(SocketServer, ReapsDisconnectedClientsWhileRunning) {
  ServeTarget target = target_for("ball-4", 200, 7);
  ServeConfig config;
  config.threads = 1;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("reap");
  ASSERT_TRUE(server.start(service, path));

  for (std::uint64_t i = 0; i < 8; ++i) {
    SocketClient client;
    ASSERT_TRUE(client.connect(path));
    ASSERT_TRUE(client.send_query(i, 0));
    Frame f;
    ASSERT_TRUE(client.recv_frame(&f));
    EXPECT_EQ(f.type, FrameType::Result);
    client.close();
  }
  // The reader threads notice the EOFs asynchronously; give them a moment.
  for (int spin = 0; spin < 500 && server.connection_count() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.connection_count(), 0u)
      << "disconnected connections held until stop()";

  // The acceptor is still alive after the churn: a fresh client round-trips.
  SocketClient again;
  ASSERT_TRUE(again.connect(path));
  ASSERT_TRUE(again.send_query(99, 1));
  Frame f;
  ASSERT_TRUE(again.recv_frame(&f));
  EXPECT_EQ(f.type, FrameType::Result);
  EXPECT_EQ(f.result.request_id, 99u);
  again.close();

  service.drain_and_stop();
  server.stop();
}

// A client that submits queries but never reads responses fills its socket
// buffer.  The send timeout must convert that into a dropped connection —
// workers may block inside a completion callback for at most one timeout,
// and graceful drain still completes every accepted request.
TEST(SocketServer, SlowClientTimesOutInsteadOfWedgingDrain) {
  ServeTarget target = target_for("ball-4", 400, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = 1 << 15;
  config.cache.policy = CachePolicy::Shared;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("slow");
  ASSERT_TRUE(server.start(service, path, /*write_timeout_ms=*/100));

  SocketClient client;
  ASSERT_TRUE(client.connect(path));
  // Far more responses than a Unix-socket buffer holds, and we never read.
  constexpr std::uint64_t kQueries = 20000;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    if (!client.send_query(i, static_cast<std::int64_t>(i) % n)) break;
  }

  // The load-bearing assertion is that this returns at all: before the send
  // timeout, a worker wedged forever inside write() and in_flight_ never
  // drained.  Every accepted request still completes (its callback runs;
  // the write is simply dropped on the closed connection).
  service.drain_and_stop();
  const ServeCounters counters = service.counters();
  EXPECT_EQ(counters.completed, counters.accepted);
  EXPECT_GT(counters.accepted, 0);

  client.close();
  server.stop();
}

}  // namespace
}  // namespace volcal::serve
