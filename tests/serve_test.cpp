// Query-service layer (src/serve/): wire protocol, admission control, drain
// ordering, latency accounting, and the end-to-end hot-swap exactness the
// token-based storage identity exists for.
//
// The load-bearing contract: a label served by QueryService equals the
// offline engine's output for that node, bit for bit — through the batched
// backend, through cache hits, and across snapshot swaps (where the old
// pointer-keyed cache identity could alias a recycled mmap address; see
// tests/view_cache_test.cpp RemapAtSameAddressDoesNotServeStaleBalls for the
// unit-level pin).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "perf/json.hpp"
#include "volcal/io.hpp"
#include "volcal/problems.hpp"
#include "volcal/runtime.hpp"
#include "volcal/serve.hpp"

namespace volcal::serve {
namespace {

namespace fs = std::filesystem;

TEST(ServeProtocol, FramesRoundTripThroughAChunkedStream) {
  QueryFrame q;
  q.request_id = 0x1122334455667788ull;
  q.node = -7;
  ResultFrame r;
  r.request_id = 42;
  r.status = QueryStatus::InvalidNode;
  r.node = 1;
  r.label = -3;
  r.volume = 1LL << 40;
  r.distance = 4;
  r.queries = 99;
  r.latency_ns = 123456789;
  ShedFrame s;
  s.request_id = 7;
  s.retry_after_ms = 50;
  ByeFrame b;
  b.reason = 0;

  std::vector<std::uint8_t> stream;
  for (const auto& bytes :
       {encode_query(q), encode_result(r), encode_shed(s), encode_bye(b)}) {
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  // Feed one byte at a time: the reader must buffer partials across reads.
  FrameReader reader;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    Frame f;
    while (reader.next(&f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_FALSE(reader.corrupt());

  EXPECT_EQ(frames[0].type, FrameType::Query);
  EXPECT_EQ(frames[0].query.request_id, q.request_id);
  EXPECT_EQ(frames[0].query.node, q.node);

  EXPECT_EQ(frames[1].type, FrameType::Result);
  EXPECT_EQ(frames[1].result.request_id, r.request_id);
  EXPECT_EQ(frames[1].result.status, QueryStatus::InvalidNode);
  EXPECT_EQ(frames[1].result.label, r.label);
  EXPECT_EQ(frames[1].result.volume, r.volume);
  EXPECT_EQ(frames[1].result.distance, r.distance);
  EXPECT_EQ(frames[1].result.queries, r.queries);
  EXPECT_EQ(frames[1].result.latency_ns, r.latency_ns);

  EXPECT_EQ(frames[2].type, FrameType::Shed);
  EXPECT_EQ(frames[2].shed.request_id, s.request_id);
  EXPECT_EQ(frames[2].shed.retry_after_ms, s.retry_after_ms);

  EXPECT_EQ(frames[3].type, FrameType::Bye);
  EXPECT_EQ(frames[3].bye.reason, 0);
}

TEST(ServeProtocol, UpdateFramesRoundTripThroughAChunkedStream) {
  UpdateFrame u;
  u.request_id = 0xabcdef0123456789ull;
  u.batch.rewires.push_back({3, 9});
  u.batch.rewires.push_back({17, 2});
  u.batch.label_updates.push_back({4, LabelChannel::InColor, 1});
  u.batch.label_updates.push_back({-2, LabelChannel::Level, -5});
  UpdateResultFrame ur;
  ur.request_id = 77;
  ur.status = UpdateStatus::Invalid;
  ur.cache_evicted = 1ull << 33;
  ur.cache_retained = 12345;
  ur.flushed = 1;
  ur.apply_ns = -9;  // sign must survive the wire

  std::vector<std::uint8_t> stream = encode_update(u);
  const std::vector<std::uint8_t> result_bytes = encode_update_result(ur);
  stream.insert(stream.end(), result_bytes.begin(), result_bytes.end());

  FrameReader reader;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {  // byte-at-a-time: partial buffering
    reader.feed(&byte, 1);
    Frame f;
    while (reader.next(&f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_FALSE(reader.corrupt());

  EXPECT_EQ(frames[0].type, FrameType::Update);
  EXPECT_EQ(frames[0].update.request_id, u.request_id);
  ASSERT_EQ(frames[0].update.batch.rewires.size(), 2u);
  EXPECT_EQ(frames[0].update.batch.rewires[0].leaf, 3);
  EXPECT_EQ(frames[0].update.batch.rewires[0].new_parent, 9);
  EXPECT_EQ(frames[0].update.batch.rewires[1].leaf, 17);
  ASSERT_EQ(frames[0].update.batch.label_updates.size(), 2u);
  EXPECT_EQ(frames[0].update.batch.label_updates[0].node, 4);
  EXPECT_EQ(frames[0].update.batch.label_updates[0].channel, LabelChannel::InColor);
  EXPECT_EQ(frames[0].update.batch.label_updates[0].value, 1);
  EXPECT_EQ(frames[0].update.batch.label_updates[1].node, -2);
  EXPECT_EQ(frames[0].update.batch.label_updates[1].value, -5);

  EXPECT_EQ(frames[1].type, FrameType::UpdateResult);
  EXPECT_EQ(frames[1].update_result.request_id, ur.request_id);
  EXPECT_EQ(frames[1].update_result.status, UpdateStatus::Invalid);
  EXPECT_EQ(frames[1].update_result.cache_evicted, ur.cache_evicted);
  EXPECT_EQ(frames[1].update_result.cache_retained, ur.cache_retained);
  EXPECT_EQ(frames[1].update_result.flushed, 1);
  EXPECT_EQ(frames[1].update_result.apply_ns, -9);
}

TEST(ServeProtocol, UpdateFrameBoundsAreEnforcedBothWays) {
  // Encoder side: a batch whose wire size exceeds kMaxUpdateFrameBytes must
  // throw, not emit a frame the peer will condemn.
  UpdateFrame huge;
  huge.batch.rewires.resize(70000);  // 70000 * 16 bytes > 1 MiB
  EXPECT_THROW(encode_update(huge), std::length_error);

  // Reader side: an Update type byte admits lengths beyond kMaxFrameBytes
  // (like Stats) but only up to the update bound.
  {
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, static_cast<std::uint32_t>(kMaxUpdateFrameBytes + 1));
    wire::put_u8(bytes, static_cast<std::uint8_t>(FrameType::Update));
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
  {
    // Declared counts that do not match the payload length: corrupt, never a
    // partial decode.
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, 17);  // type + id + counts, but counts claim content
    wire::put_u8(bytes, static_cast<std::uint8_t>(FrameType::Update));
    wire::put_u64(bytes, 1);
    wire::put_u32(bytes, 5);  // 5 rewires that are not present
    wire::put_u32(bytes, 0);
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
}

TEST(ServeProtocol, OversizedOrMalformedFramesMarkTheStreamCorrupt) {
  {
    // Declared length beyond kMaxFrameBytes: corruption for every type but
    // Stats.  The reader withholds judgement until the type byte arrives
    // (a lone oversized prefix could still become a legal Stats frame), then
    // condemns the stream.
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, static_cast<std::uint32_t>(kMaxFrameBytes + 1));
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_FALSE(reader.corrupt());  // prefix alone: undecided, not corrupt
    const auto type = static_cast<std::uint8_t>(FrameType::Result);
    reader.feed(&type, 1);
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
  {
    // Even a Stats type byte cannot legitimize a length beyond the Stats
    // bound.
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, static_cast<std::uint32_t>(kMaxStatsFrameBytes + 1));
    wire::put_u8(bytes, static_cast<std::uint8_t>(FrameType::Stats));
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
  {
    // Right length prefix, wrong payload size for the type.
    FrameReader reader;
    std::vector<std::uint8_t> bytes;
    wire::put_u32(bytes, 3);
    wire::put_u8(bytes, static_cast<std::uint8_t>(FrameType::Query));
    wire::put_u8(bytes, 0);
    wire::put_u8(bytes, 0);
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_FALSE(reader.next(&f));
    EXPECT_TRUE(reader.corrupt());
  }
}

TEST(ServeProtocol, StatsFramesRoundTripAndMayExceedTheQueryFrameBound) {
  // A stats payload bigger than kMaxFrameBytes (but under the stats bound)
  // must pass: the reader admits oversized frames for the Stats type only.
  const std::string big(kMaxFrameBytes + 100, 'x');
  std::vector<std::uint8_t> stream = encode_stats_request(9);
  const std::vector<std::uint8_t> stats =
      encode_stats(9, "{\"payload\": \"" + big + "\"}");
  stream.insert(stream.end(), stats.begin(), stats.end());

  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  Frame f;
  ASSERT_TRUE(reader.next(&f));
  EXPECT_EQ(f.type, FrameType::StatsRequest);
  EXPECT_EQ(f.stats_request.request_id, 9u);
  ASSERT_TRUE(reader.next(&f));
  EXPECT_EQ(f.type, FrameType::Stats);
  EXPECT_EQ(f.stats.request_id, 9u);
  EXPECT_NE(f.stats.json.find(big), std::string::npos);
  EXPECT_FALSE(reader.corrupt());

  // The same oversized length under a Query type byte stays corruption.
  FrameReader strict;
  std::vector<std::uint8_t> bytes;
  wire::put_u32(bytes, static_cast<std::uint32_t>(kMaxFrameBytes + 1));
  wire::put_u8(bytes, static_cast<std::uint8_t>(FrameType::Query));
  strict.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(strict.next(&f));
  EXPECT_TRUE(strict.corrupt());
}

// Collects completion callbacks so tests can wait for a specific number of
// responses while the service is still running.
class ResultCollector {
 public:
  std::function<void(const QueryResult&)> sink() {
    return [this](const QueryResult& r) {
      std::lock_guard lock(mu_);
      results_[r.request_id] = r;
      cv_.notify_all();
    };
  }

  void wait_for(std::size_t count) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return results_.size() >= count; });
  }

  std::map<std::uint64_t, QueryResult> take() {
    std::lock_guard lock(mu_);
    return results_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, QueryResult> results_;
};

std::vector<int> offline_labels(const ErasedInstance& inst) {
  const auto sweep = run_at_all_nodes(inst.graph(), inst.ids(),
                                      [&](Execution& e) { return inst.solve(e); });
  return sweep.output;
}

ServeTarget target_for(const std::string& family, NodeIndex n, std::uint64_t seed) {
  const RegistryEntry* entry = ProblemRegistry::global().find(family);
  EXPECT_NE(entry, nullptr) << family;
  return make_serve_target(
      std::make_shared<const ErasedInstance>(entry->make(n, seed)));
}

// Served labels == offline sweep labels, on both execution paths.  The
// ball-4 family takes the fused batched path (its plan is batchable), the
// leaf-coloring family the per-request solve() path.
TEST(QueryService, ServedLabelsMatchTheOfflineSweep) {
  for (const char* family : {"ball-4", "leaf-coloring"}) {
    SCOPED_TRACE(family);
    ServeTarget target = target_for(family, 600, 7);
    const std::vector<int> expected = offline_labels(*target.instance);
    const auto n = static_cast<std::int64_t>(expected.size());

    ServeConfig config;
    config.threads = 4;
    config.queue_capacity = static_cast<std::size_t>(2 * n);
    config.cache.policy = CachePolicy::Shared;
    QueryService service(std::move(target), config);

    ResultCollector collector;
    // Two rounds over every node: the second is served warm (cache hits for
    // the batchable family) and must answer identically.
    for (std::int64_t round = 0; round < 2; ++round) {
      for (std::int64_t v = 0; v < n; ++v) {
        const auto id = static_cast<std::uint64_t>(round * n + v);
        ASSERT_EQ(service.submit(id, v, collector.sink()), Admission::Accepted);
      }
    }
    service.drain_and_stop();

    const auto results = collector.take();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(2 * n));
    for (const auto& [id, r] : results) {
      const auto v = static_cast<std::int64_t>(id) % n;
      EXPECT_EQ(r.status, QueryStatus::Ok);
      EXPECT_EQ(r.label, expected[static_cast<std::size_t>(v)])
          << "node " << v << " id " << id;
      EXPECT_GE(r.volume, 1);
      EXPECT_GE(r.latency_ns, 0);
    }
    const ServeCounters counters = service.counters();
    EXPECT_EQ(counters.accepted, 2 * n);
    EXPECT_EQ(counters.completed, 2 * n);
    EXPECT_EQ(counters.shed, 0);
    EXPECT_EQ(counters.invalid, 0);
    if (std::string(family) == "ball-4") {
      // Round two re-queries every center: the shared cache must have hits.
      EXPECT_GT(service.cache_stats().hits, 0);
    }
    const stats::Summary latency = service.latency_summary();
    EXPECT_EQ(latency.count, static_cast<std::size_t>(2 * n));
    EXPECT_LE(latency.median, latency.p95);
    EXPECT_LE(latency.p95, latency.p99);
  }
}

TEST(QueryService, InvalidNodesAreFlaggedNotExecuted) {
  ServeTarget target = target_for("ball-4", 200, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 1;
  QueryService service(std::move(target), config);

  ResultCollector collector;
  ASSERT_EQ(service.submit(1, -1, collector.sink()), Admission::Accepted);
  ASSERT_EQ(service.submit(2, n, collector.sink()), Admission::Accepted);
  ASSERT_EQ(service.submit(3, 0, collector.sink()), Admission::Accepted);
  service.drain_and_stop();

  const auto results = collector.take();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.at(1).status, QueryStatus::InvalidNode);
  EXPECT_EQ(results.at(2).status, QueryStatus::InvalidNode);
  EXPECT_EQ(results.at(1).label, 0);
  EXPECT_EQ(results.at(3).status, QueryStatus::Ok);
  EXPECT_EQ(service.counters().invalid, 2);
}

// Deterministic shed: block the single worker inside a completion callback,
// fill the queue to capacity, and the next submit must shed.
TEST(QueryService, ShedsWhenTheQueueIsFullAndRecovers) {
  ServeTarget target = target_for("ball-4", 200, 7);
  ServeConfig config;
  config.threads = 1;
  config.batch_max = 1;  // the worker holds exactly one request at a time
  config.queue_capacity = 2;
  QueryService service(std::move(target), config);

  std::promise<void> worker_entered;
  std::promise<void> release_worker;
  std::shared_future<void> release = release_worker.get_future().share();
  ASSERT_EQ(service.submit(0, 0,
                           [&](const QueryResult&) {
                             worker_entered.set_value();
                             release.wait();
                           }),
            Admission::Accepted);
  worker_entered.get_future().wait();  // the worker is now parked off-queue

  ResultCollector collector;
  EXPECT_EQ(service.submit(1, 1, collector.sink()), Admission::Accepted);
  EXPECT_EQ(service.submit(2, 2, collector.sink()), Admission::Accepted);
  // Queue holds 2/2: admission control must shed, not grow the backlog.
  EXPECT_EQ(service.submit(3, 3, collector.sink()), Admission::Shed);
  EXPECT_EQ(service.counters().shed, 1);

  release_worker.set_value();
  service.drain_and_stop();
  // The shed request never ran; both accepted ones did.
  const auto results = collector.take();
  EXPECT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.count(1) == 1 && results.count(2) == 1);
  const ServeCounters counters = service.counters();
  EXPECT_EQ(counters.accepted, 3);
  EXPECT_EQ(counters.completed, 3);
}

// Drain ordering: every accepted callback has run by the time
// drain_and_stop() returns, and later submits are Stopped (not Shed — the
// client must not retry).
TEST(QueryService, DrainCompletesEveryAcceptedRequestThenRefuses) {
  ServeTarget target = target_for("ball-4", 400, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = static_cast<std::size_t>(n);
  QueryService service(std::move(target), config);

  std::atomic<int> completions{0};
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v,
                             [&](const QueryResult&) {
                               completions.fetch_add(1, std::memory_order_relaxed);
                             }),
              Admission::Accepted);
  }
  service.drain_and_stop();
  EXPECT_EQ(completions.load(), n);
  EXPECT_EQ(service.submit(999999, 0, nullptr), Admission::Stopped);
  // Idempotent: a second drain is a no-op.
  service.drain_and_stop();
}

// The end-to-end ABA scenario the storage token fixes: serve snapshot A,
// hot-swap to snapshot B of the same shape (old mapping unmapped, new one
// plausibly at the recycled address), and every post-swap answer must match
// B's offline labels — never A's cached balls.
TEST(QueryService, HotSwapUnderWarmCacheServesTheNewSnapshotExactly) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("volcal-serve-test-" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::create_directories(dir);
  const std::string path_a = (dir / "a.vsnap").string();
  const std::string path_b = (dir / "b.vsnap").string();

  // ball-4 labels are pure ball volumes, and the default instance shape is a
  // complete binary tree whose structure ignores the seed — so use variant 1
  // (random full binary tree), where seeds 7 and 11 shape different trees.
  const RegistryEntry* entry = ProblemRegistry::global().find("ball-4");
  ASSERT_NE(entry, nullptr);
  entry->make_variant(600, 7, 1).save_snapshot(path_a);
  entry->make_variant(600, 11, 1).save_snapshot(path_b);

  ServeConfig config;
  config.threads = 4;
  config.queue_capacity = 4096;
  config.cache.policy = CachePolicy::Shared;

  std::vector<int> expected_a, expected_b;
  {
    const ErasedInstance a = io::load_instance(path_a);
    expected_a = offline_labels(a);
    const ErasedInstance b = io::load_instance(path_b);
    expected_b = offline_labels(b);
  }
  const auto n = static_cast<std::int64_t>(expected_a.size());
  ASSERT_EQ(expected_b.size(), static_cast<std::size_t>(n));
  // Seeds 7 and 11 must disagree somewhere, or the swap check is vacuous.
  ASSERT_NE(expected_a, expected_b);

  QueryService service(
      make_serve_target(
          std::make_shared<const ErasedInstance>(io::load_instance(path_a))),
      config);

  // Warm the cache on A across every node.
  ResultCollector before;
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v, before.sink()),
              Admission::Accepted);
  }
  before.wait_for(static_cast<std::size_t>(n));
  for (const auto& [id, r] : before.take()) {
    ASSERT_EQ(r.label, expected_a[static_cast<std::size_t>(id)]) << "node " << id;
  }

  // Swap to B while the service is live.  The old target's mapping is
  // released here (no other holder), so B's mmap may land on A's address —
  // the exact pointer-ABA recycling the token identity defends against.
  service.swap_target(make_serve_target(
      std::make_shared<const ErasedInstance>(io::load_instance(path_b))));

  ResultCollector after;
  for (std::int64_t v = 0; v < n; ++v) {
    const auto id = static_cast<std::uint64_t>(n + v);
    ASSERT_EQ(service.submit(id, v, after.sink()), Admission::Accepted);
  }
  service.drain_and_stop();
  const auto results = after.take();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(n));
  for (const auto& [id, r] : results) {
    const auto v = static_cast<std::int64_t>(id) - n;
    ASSERT_EQ(r.label, expected_b[static_cast<std::size_t>(v)])
        << "post-swap node " << v << " served a stale answer";
  }
  EXPECT_EQ(service.counters().swaps, 1);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Live mutation apply: after apply_mutations the service serves the mutated
// instance bit-for-bit, retained cache entries keep serving (no full flush on
// a localized delta), and an invalid batch is rejected whole with the served
// target untouched.
TEST(QueryService, AppliedMutationsServeTheMutatedGraphExactly) {
  ServeTarget target = target_for("ball-4", 600, 7);
  const std::shared_ptr<const ErasedInstance> inst = target.instance;
  const std::vector<int> expected = offline_labels(*inst);
  const auto n = static_cast<std::int64_t>(expected.size());

  ServeConfig config;
  config.threads = 4;
  config.queue_capacity = static_cast<std::size_t>(2 * n);
  config.cache.policy = CachePolicy::Shared;
  QueryService service(std::move(target), config);

  // Warm the shared cache across every node on the pre-mutation graph.
  ResultCollector before;
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v, before.sink()),
              Admission::Accepted);
  }
  before.wait_for(static_cast<std::size_t>(n));
  for (const auto& [id, r] : before.take()) {
    ASSERT_EQ(r.label, expected[static_cast<std::size_t>(id)]) << "node " << id;
  }

  // One leaf rewire + two label writes: a localized delta.  The mutated
  // oracle is the instance's own mutate path, the same one
  // check_mutation_case pins against the naive rebuild.
  const MutationBatch batch = inst->propose_mutation(/*seed=*/123, /*rewires=*/1,
                                                     /*label_updates=*/2);
  ASSERT_FALSE(batch.empty());
  const ErasedInstance mutated = inst->mutated(batch);
  const std::vector<int> expected_mut = offline_labels(mutated);

  const MutationOutcome mo = service.apply_mutations(batch);
  ASSERT_TRUE(mo.ok) << mo.error;
  EXPECT_FALSE(mo.flushed);
  EXPECT_GE(mo.apply_ns, 0);
  // A radius-4 plan with one rewire touches a small region of a 600-node
  // tree: some entries die, most survive.
  EXPECT_GT(mo.cache_evicted, 0u);
  EXPECT_GT(mo.cache_retained, mo.cache_evicted);

  const std::int64_t hits_before_requery = service.cache_stats().hits;
  ResultCollector after;
  for (std::int64_t v = 0; v < n; ++v) {
    const auto id = static_cast<std::uint64_t>(n + v);
    ASSERT_EQ(service.submit(id, v, after.sink()), Admission::Accepted);
  }
  after.wait_for(static_cast<std::size_t>(n));
  for (const auto& [id, r] : after.take()) {
    const auto v = static_cast<std::int64_t>(id) - n;
    ASSERT_EQ(r.status, QueryStatus::Ok);
    ASSERT_EQ(r.label, expected_mut[static_cast<std::size_t>(v)])
        << "post-mutation node " << v << " served a stale answer";
  }
  // The retained entries actually served: the re-query round hit the cache.
  EXPECT_GT(service.cache_stats().hits, hits_before_requery);

  // An invalid batch (rewire of a non-leaf: node 0 is the root of the
  // complete binary tree, degree > 1) is rejected whole.
  MutationBatch bad;
  bad.rewires.push_back({0, 1});
  const MutationOutcome rejected = service.apply_mutations(bad);
  EXPECT_FALSE(rejected.ok);
  EXPECT_FALSE(rejected.error.empty());

  // Served answers are unchanged by the rejected batch.
  ResultCollector still;
  ASSERT_EQ(service.submit(static_cast<std::uint64_t>(3 * n), 1, still.sink()),
            Admission::Accepted);
  still.wait_for(1);
  EXPECT_EQ(still.take().at(static_cast<std::uint64_t>(3 * n)).label,
            expected_mut[1]);

  service.drain_and_stop();

  // The mutation counters made it into the registry snapshot.
  const obs::MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.counter("serve.mutations"), 1);
  EXPECT_EQ(snap.counter("serve.mutate.cache_evicted"),
            static_cast<std::int64_t>(mo.cache_evicted));
  EXPECT_EQ(snap.counter("serve.mutate.cache_retained"),
            static_cast<std::int64_t>(mo.cache_retained));
}

// --- Observability ---------------------------------------------------------

// stats_json() is the payload every consumer parses (Stats frame, volcal_top,
// --stats-log); its counters must agree with the typed accessors and its
// percentiles must be ordered.
TEST(QueryService, StatsJsonReconcilesWithTypedCountersAfterDrain) {
  ServeTarget target = target_for("ball-4", 400, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 4;
  config.queue_capacity = static_cast<std::size_t>(n);
  config.cache.policy = CachePolicy::Shared;
  QueryService service(std::move(target), config);

  ResultCollector collector;
  for (std::int64_t v = 0; v < n; ++v) {
    ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v, collector.sink()),
              Admission::Accepted);
  }
  service.drain_and_stop();

  std::string err;
  const perf::JsonValue doc = perf::parse_json(service.stats_json(), &err);
  ASSERT_FALSE(doc.is_null()) << err;
  EXPECT_EQ(doc.string_at("kind"), "serve-stats");

  const ServeCounters counters = service.counters();
  EXPECT_EQ(doc.int_at("accepted"), counters.accepted);
  EXPECT_EQ(doc.int_at("completed"), counters.completed);
  EXPECT_EQ(doc.int_at("shed"), counters.shed);
  EXPECT_EQ(doc.int_at("invalid"), counters.invalid);
  EXPECT_EQ(doc.int_at("queue_depth"), 0);
  EXPECT_EQ(doc.int_at("in_flight"), 0);
  EXPECT_GT(doc.number_at("uptime_seconds"), 0.0);

  const perf::JsonValue* lat = doc.find("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->int_at("count"), n);
  EXPECT_LE(lat->number_at("p50_ns"), lat->number_at("p95_ns"));
  EXPECT_LE(lat->number_at("p95_ns"), lat->number_at("p99_ns"));

  // Registry sub-object: per-family volume histogram with one entry per
  // completed request, and the admission counters under their metric names.
  const perf::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const perf::JsonValue* hists = metrics->find("histograms");
  ASSERT_NE(hists, nullptr);
  const perf::JsonValue* volume = hists->find("serve.volume.ball-4");
  ASSERT_NE(volume, nullptr) << "per-family volume histogram missing";
  EXPECT_EQ(volume->int_at("count"), n);
  EXPECT_GE(volume->int_at("min"), 1);
  const perf::JsonValue* counters_obj = metrics->find("counters");
  ASSERT_NE(counters_obj, nullptr);
  EXPECT_EQ(counters_obj->int_at("serve.accepted"), counters.accepted);
  EXPECT_EQ(counters_obj->int_at("serve.completed"), counters.completed);

  // The windowed summary covers the run we just finished (it all happened
  // well inside the default 10 s window).
  const stats::Summary window = service.window_latency_summary();
  EXPECT_EQ(window.count, static_cast<std::size_t>(n));
  EXPECT_LE(window.median, window.p95);
}

// Slow-query log threshold edges: 0 records everything (bounded by
// capacity), a huge threshold records nothing, negative disables the log.
TEST(QueryService, SlowQueryLogThresholdEdges) {
  struct Case {
    std::int64_t threshold_ns;
    std::size_t capacity;
  };
  const Case cases[] = {
      {0, 1024},          // everything is slow
      {0, 16},            // everything is slow, capacity-bounded
      {INT64_MAX, 1024},  // nothing is slow
      {-1, 1024},         // log disabled
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.threshold_ns);
    ServeTarget target = target_for("ball-4", 200, 7);
    const auto n = static_cast<std::int64_t>(target.instance->node_count());
    ServeConfig config;
    config.threads = 2;
    config.queue_capacity = static_cast<std::size_t>(n);
    config.slow_threshold_ns = c.threshold_ns;
    config.slow_log_capacity = c.capacity;
    QueryService service(std::move(target), config);

    ResultCollector collector;
    for (std::int64_t v = 0; v < n; ++v) {
      ASSERT_EQ(service.submit(static_cast<std::uint64_t>(v), v, collector.sink()),
                Admission::Accepted);
    }
    service.drain_and_stop();

    const std::vector<SlowQuery> slow = service.slow_queries();
    if (c.threshold_ns == 0) {
      // Latency >= 0 always holds, so every completion is recorded — newest
      // kept once the capacity bound kicks in.
      EXPECT_EQ(slow.size(), std::min(c.capacity, static_cast<std::size_t>(n)));
      for (const SlowQuery& q : slow) {
        EXPECT_GE(q.latency_ns, 0);
        EXPECT_GE(q.node, 0);
        EXPECT_LT(q.node, n);
      }
    } else {
      EXPECT_TRUE(slow.empty());
    }
    // The slow counter tracks threshold matches, not log retention: with
    // threshold 0 every completion counts even after eviction.
    std::string err;
    const perf::JsonValue doc = perf::parse_json(service.stats_json(), &err);
    ASSERT_FALSE(doc.is_null()) << err;
    EXPECT_EQ(doc.int_at("slow_queries"), c.threshold_ns == 0 ? n : 0);
  }
}

// An attached tracer collects one span per completed request with a
// monotone admit <= dequeue <= exec_end <= done timeline.
TEST(QueryService, TracerRecordsOneOrderedSpanPerRequest) {
  ServeTarget target = target_for("ball-4", 200, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeTracer tracer;
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = static_cast<std::size_t>(2 * n);
  config.cache.policy = CachePolicy::Shared;
  config.tracer = &tracer;
  QueryService service(std::move(target), config);

  ResultCollector collector;
  for (std::int64_t round = 0; round < 2; ++round) {
    for (std::int64_t v = 0; v < n; ++v) {
      const auto id = static_cast<std::uint64_t>(round * n + v);
      ASSERT_EQ(service.submit(id, v, collector.sink()), Admission::Accepted);
    }
  }
  service.drain_and_stop();

  const std::vector<RequestSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(2 * n));
  EXPECT_EQ(tracer.dropped(), 0);
  std::uint64_t seq_seen = 0;
  bool any_cache_hit = false;
  for (const RequestSpan& span : spans) {
    EXPECT_GE(span.seq, 1u);
    seq_seen = std::max(seq_seen, span.seq);
    EXPECT_LE(span.admit_ns, span.dequeue_ns);
    EXPECT_LE(span.dequeue_ns, span.exec_end_ns);
    EXPECT_LE(span.exec_end_ns, span.done_ns);
    EXPECT_GE(span.worker, 0);
    EXPECT_GE(span.volume, 1);
    EXPECT_FALSE(span.invalid);
    any_cache_hit |= span.cache_hit;
  }
  // Admission sequence numbers are dense 1..2n.
  EXPECT_EQ(seq_seen, static_cast<std::uint64_t>(2 * n));
  // Round two re-queries warm centers: some spans must be cache hits.
  EXPECT_TRUE(any_cache_hit);

  // The Chrome export accepts the collected spans.
  const fs::path trace_path =
      fs::temp_directory_path() /
      ("volcal-trace-test-" + std::to_string(::getpid()) + ".json");
  EXPECT_TRUE(write_serve_chrome_trace(trace_path.string(), spans));
  std::error_code ec;
  EXPECT_GT(fs::file_size(trace_path, ec), 0u);
  fs::remove(trace_path, ec);
}

// --- Socket transport ------------------------------------------------------

std::string unique_socket_path(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("volcal-") + tag + "-" +
           std::to_string(::getpid()) + "-" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           ".sock"))
      .string();
}

// Disconnected clients must be reaped as they leave, not accumulated until
// stop(): a long-running server otherwise leaks one fd + thread object per
// connection ever accepted and eventually hits EMFILE.
TEST(SocketServer, ReapsDisconnectedClientsWhileRunning) {
  ServeTarget target = target_for("ball-4", 200, 7);
  ServeConfig config;
  config.threads = 1;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("reap");
  ASSERT_TRUE(server.start(service, path));

  for (std::uint64_t i = 0; i < 8; ++i) {
    ServeClient client;
    ASSERT_TRUE(client.connect(path));
    const ServeClient::QueryReply reply = client.query(0);
    ASSERT_TRUE(reply.ok);
    EXPECT_FALSE(reply.shed);
    client.bye();
  }
  // The reader threads notice the EOFs asynchronously; give them a moment.
  for (int spin = 0; spin < 500 && server.connection_count() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.connection_count(), 0u)
      << "disconnected connections held until stop()";

  // The acceptor is still alive after the churn: a fresh client round-trips.
  ServeClient again;
  ASSERT_TRUE(again.connect(path));
  const ServeClient::QueryReply reply = again.query(1);
  ASSERT_TRUE(reply.ok);
  EXPECT_FALSE(reply.shed);
  EXPECT_EQ(reply.result.node, 1);
  again.bye();

  service.drain_and_stop();
  server.stop();
}

// A client that submits queries but never reads responses fills its socket
// buffer.  The send timeout must convert that into a dropped connection —
// workers may block inside a completion callback for at most one timeout,
// and graceful drain still completes every accepted request.
TEST(SocketServer, SlowClientTimesOutInsteadOfWedgingDrain) {
  ServeTarget target = target_for("ball-4", 400, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = 1 << 15;
  config.cache.policy = CachePolicy::Shared;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("slow");
  ASSERT_TRUE(server.start(service, path, /*write_timeout_ms=*/100));

  ServeClient client;
  ASSERT_TRUE(client.connect(path));
  // Far more responses than a Unix-socket buffer holds, and we never poll():
  // the pipelined fire-and-forget mode is exactly the misbehaving-client
  // shape this test needs.
  constexpr std::uint64_t kQueries = 20000;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    if (!client.post_query(i, static_cast<std::int64_t>(i) % n)) break;
  }

  // The load-bearing assertion is that this returns at all: before the send
  // timeout, a worker wedged forever inside write() and in_flight_ never
  // drained.  Every accepted request still completes (its callback runs;
  // the write is simply dropped on the closed connection).
  service.drain_and_stop();
  const ServeCounters counters = service.counters();
  EXPECT_EQ(counters.completed, counters.accepted);
  EXPECT_GT(counters.accepted, 0);

  client.close();
  server.stop();
}

// The Stats frame answers live, mid-load, on the reader thread — polls must
// round-trip while query traffic is in flight, return monotone counters
// across polls, and reconcile with the service's final numbers.
TEST(SocketServer, StatsFrameRoundTripsUnderConcurrentLoad) {
  ServeTarget target = target_for("ball-4", 400, 7);
  const auto n = static_cast<std::int64_t>(target.instance->node_count());
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = 1 << 14;
  config.cache.policy = CachePolicy::Shared;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("stats");
  ASSERT_TRUE(server.start(service, path));

  // Query clients: each drives its own connection synchronously.
  std::atomic<bool> load_ok{true};
  std::vector<std::thread> loaders;
  const int kLoaders = 3;
  const std::uint64_t kPerLoader = 400;
  for (int t = 0; t < kLoaders; ++t) {
    loaders.emplace_back([&, t] {
      ServeClient client;
      if (!client.connect(path)) {
        load_ok = false;
        return;
      }
      for (std::uint64_t i = 0; i < kPerLoader; ++i) {
        const std::int64_t node = static_cast<std::int64_t>(i) % n;
        const ServeClient::QueryReply reply = client.query(node);
        if (!reply.ok || reply.shed || reply.result.node != node) {
          load_ok = false;
          return;
        }
      }
      (void)t;
      client.bye();
    });
  }

  // Stats poller: interleaves Stats frames with the load, one fresh
  // connection per poll exactly like volcal_top.
  std::int64_t prev_completed = -1;
  std::int64_t polls_answered = 0;
  for (std::uint64_t poll = 1; poll <= 20; ++poll) {
    ServeClient probe;
    ASSERT_TRUE(probe.connect(path));
    std::string json;
    ASSERT_TRUE(probe.stats(&json));
    std::string err;
    const perf::JsonValue doc = perf::parse_json(json, &err);
    ASSERT_FALSE(doc.is_null()) << err;
    // Monotone counters across polls, consistent ordering within one.
    const std::int64_t completed = doc.int_at("completed");
    EXPECT_GE(completed, prev_completed);
    prev_completed = completed;
    EXPECT_GE(doc.int_at("accepted"), completed);
    if (const perf::JsonValue* lat = doc.find("latency")) {
      EXPECT_LE(lat->number_at("p50_ns"), lat->number_at("p99_ns"));
    }
    ++polls_answered;
    probe.close();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  for (auto& th : loaders) th.join();
  EXPECT_TRUE(load_ok.load());
  EXPECT_EQ(polls_answered, 20);

  service.drain_and_stop();
  // Final reconciliation: one last poll equals the service's own counters.
  const ServeCounters counters = service.counters();
  EXPECT_EQ(counters.completed, kLoaders * static_cast<std::int64_t>(kPerLoader));
  std::string err;
  const perf::JsonValue final_doc = perf::parse_json(service.stats_json(), &err);
  ASSERT_FALSE(final_doc.is_null()) << err;
  EXPECT_EQ(final_doc.int_at("completed"), counters.completed);
  EXPECT_EQ(final_doc.int_at("accepted"), counters.accepted);
  server.stop();
}

// Update frames over the wire: ServeClient::update applies a MutationBatch
// through a live server and every subsequent query serves the mutated graph;
// a rejected batch comes back Invalid without disturbing the stream.
TEST(SocketServer, UpdateFramesApplyMutationsOverTheWire) {
  ServeTarget target = target_for("ball-4", 300, 7);
  const std::shared_ptr<const ErasedInstance> inst = target.instance;
  const auto n = static_cast<std::int64_t>(inst->node_count());
  ServeConfig config;
  config.threads = 2;
  config.queue_capacity = static_cast<std::size_t>(n);
  config.cache.policy = CachePolicy::Shared;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("update");
  ASSERT_TRUE(server.start(service, path));

  const MutationBatch batch = inst->propose_mutation(/*seed=*/99, /*rewires=*/2,
                                                     /*label_updates=*/1);
  ASSERT_FALSE(batch.empty());
  const std::vector<int> expected = offline_labels(*inst);
  const std::vector<int> expected_mut = offline_labels(inst->mutated(batch));

  ServeClient client;
  ASSERT_TRUE(client.connect(path));
  // Warm round on the pre-mutation graph: binds the shared cache to the old
  // token, so the update below takes the region invalidation, not the
  // cold-cache flush fallback.
  for (std::int64_t v = 0; v < n; ++v) {
    const ServeClient::QueryReply reply = client.query(v);
    ASSERT_TRUE(reply.ok);
    ASSERT_FALSE(reply.shed);
    ASSERT_EQ(reply.result.label, expected[static_cast<std::size_t>(v)])
        << "pre-update node " << v;
  }

  const ServeClient::UpdateReply applied = client.update(batch);
  ASSERT_TRUE(applied.ok);
  EXPECT_EQ(applied.result.status, UpdateStatus::Ok);
  EXPECT_EQ(applied.result.flushed, 0);
  EXPECT_GE(applied.result.apply_ns, 0);

  // The same connection keeps working: every node now answers from the
  // mutated graph.
  for (std::int64_t v = 0; v < n; ++v) {
    const ServeClient::QueryReply reply = client.query(v);
    ASSERT_TRUE(reply.ok);
    ASSERT_FALSE(reply.shed);
    ASSERT_EQ(reply.result.label, expected_mut[static_cast<std::size_t>(v)])
        << "post-update node " << v;
  }

  // A bad rewire (root is not a leaf) is rejected server-side; the reply is
  // typed Invalid and the connection stays usable.
  MutationBatch bad;
  bad.rewires.push_back({0, 1});
  const ServeClient::UpdateReply rejected = client.update(bad);
  ASSERT_TRUE(rejected.ok);
  EXPECT_EQ(rejected.result.status, UpdateStatus::Invalid);
  const ServeClient::QueryReply still = client.query(0);
  ASSERT_TRUE(still.ok);
  EXPECT_EQ(still.result.label, expected_mut[0]);

  client.bye();
  service.drain_and_stop();
  server.stop();
}

// The transport registers its connection metrics in the service's registry:
// the connection-count gauge tracks live clients and the total counter every
// accept since start.
TEST(SocketServer, ConnectionMetricsAppearInTheServiceRegistry) {
  ServeTarget target = target_for("ball-4", 200, 7);
  ServeConfig config;
  config.threads = 1;
  QueryService service(std::move(target), config);
  SocketServer server;
  const std::string path = unique_socket_path("connmetrics");
  ASSERT_TRUE(server.start(service, path));

  ServeClient a, b;
  ASSERT_TRUE(a.connect(path));
  ASSERT_TRUE(b.connect(path));
  // One round-trip each so the accepts are definitely processed.
  ASSERT_TRUE(a.query(0).ok);
  ASSERT_TRUE(b.query(1).ok);

  obs::MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.counter("serve.connections_total"), 2);
  EXPECT_EQ(snap.gauge("serve.connections"), 2);

  a.close();
  b.close();
  for (int spin = 0; spin < 500 && server.connection_count() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  snap = service.metrics().snapshot();
  EXPECT_EQ(snap.gauge("serve.connections"), 0);
  EXPECT_EQ(snap.counter("serve.connections_total"), 2);

  service.drain_and_stop();
  server.stop();
  // After stop the gauge callback is re-pointed at a constant 0 — snapshots
  // of the outliving registry must not dereference the dead server.
  EXPECT_EQ(service.metrics().snapshot().gauge("serve.connections"), 0);
}

}  // namespace
}  // namespace volcal::serve
