#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"

namespace volcal {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  Graph g = Graph::Builder(0).build();
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(GraphBuilder, SingleEdgeAutoPorts) {
  Graph::Builder b(2);
  auto [pv, pw] = b.add_edge(0, 1);
  EXPECT_EQ(pv, 1);
  EXPECT_EQ(pw, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.neighbor(0, 1), 1);
  EXPECT_EQ(g.neighbor(1, 1), 0);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.max_degree(), 1);
}

TEST(GraphBuilder, ExplicitPortsRespected) {
  Graph::Builder b(3);
  b.add_edge_with_ports(0, 1, 2, 1);
  b.add_edge_with_ports(0, 2, 1, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.neighbor(0, 1), 2);
  EXPECT_EQ(g.neighbor(0, 2), 1);
  EXPECT_EQ(g.port_to(0, 1), 2);
  EXPECT_EQ(g.port_to(0, 2), 1);
  EXPECT_EQ(g.port_to(1, 0), 1);
}

TEST(GraphBuilder, AutoPortsAppendAfterExplicit) {
  Graph::Builder b(3);
  b.add_edge_with_ports(0, 1, 1, 1);
  auto [pv, pw] = b.add_edge(0, 2);
  EXPECT_EQ(pv, 2);
  EXPECT_EQ(pw, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 2);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  Graph::Builder b(1);
  EXPECT_THROW(b.add_edge(0, 0), std::invalid_argument);
  Graph::Builder b2(1);
  EXPECT_THROW(b2.add_edge_with_ports(0, 0, 1, 2), std::invalid_argument);
}

TEST(GraphBuilder, RejectsNonContiguousPorts) {
  Graph::Builder b(2);
  b.add_edge_with_ports(0, 1, 2, 1);  // port 2 at node 0, but no port 1
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(GraphBuilder, RejectsDuplicatePort) {
  Graph::Builder b(3);
  b.add_edge_with_ports(0, 1, 1, 1);
  b.add_edge_with_ports(0, 2, 1, 1);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRangeNode) {
  Graph::Builder b(2);
  EXPECT_THROW(b.add_edge(0, 5), std::out_of_range);
}

TEST(Graph, PortOutOfRangeThrows) {
  Graph::Builder b(2);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  EXPECT_THROW(g.neighbor(0, 0), std::out_of_range);
  EXPECT_THROW(g.neighbor(0, 2), std::out_of_range);
  EXPECT_THROW(g.neighbor(5, 1), std::out_of_range);
}

TEST(Graph, NeighborsSpanInPortOrder) {
  Graph::Builder b(4);
  b.add_edge_with_ports(0, 1, 3, 1);
  b.add_edge_with_ports(0, 2, 1, 1);
  b.add_edge_with_ports(0, 3, 2, 1);
  Graph g = std::move(b).build();
  auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 2);
  EXPECT_EQ(nbrs[1], 3);
  EXPECT_EQ(nbrs[2], 1);
}

TEST(Graph, AddNodeGrows) {
  Graph::Builder b(1);
  const NodeIndex v = b.add_node();
  EXPECT_EQ(v, 1);
  b.add_edge(0, v);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_TRUE(g.adjacent(0, 1));
}

Graph path_graph(NodeIndex n) {
  Graph::Builder b(n);
  for (NodeIndex i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

TEST(Bfs, DistancesOnPath) {
  Graph g = path_graph(5);
  auto d = bfs_distances(g, 0);
  for (NodeIndex i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Bfs, UnreachableMarked) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, BallContents) {
  Graph g = path_graph(7);
  auto ball2 = ball(g, 3, 2);
  EXPECT_EQ(ball2.size(), 5u);
  auto ball0 = ball(g, 3, 0);
  ASSERT_EQ(ball0.size(), 1u);
  EXPECT_EQ(ball0[0], 3);
  auto ballneg = ball(g, 3, -1);
  EXPECT_TRUE(ballneg.empty());
}

TEST(Bfs, BallWithDistancesLayers) {
  Graph g = path_graph(7);
  auto b = ball_with_distances(g, 0, 3);
  ASSERT_EQ(b.nodes.size(), 4u);
  for (std::size_t i = 0; i < b.nodes.size(); ++i) EXPECT_EQ(b.dist[i], b.nodes[i]);
}

TEST(Bfs, Eccentricity) {
  Graph g = path_graph(6);
  EXPECT_EQ(eccentricity(g, 0), 5);
  EXPECT_EQ(eccentricity(g, 3), 3);
}

TEST(Bfs, ConnectedComponents) {
  Graph::Builder b(5);
  b.add_edge(0, 1);
  b.add_edge(3, 4);
  Graph g = std::move(b).build();
  auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3);
  EXPECT_EQ(comps.component_of[0], comps.component_of[1]);
  EXPECT_EQ(comps.component_of[3], comps.component_of[4]);
  EXPECT_NE(comps.component_of[0], comps.component_of[2]);
  EXPECT_NE(comps.component_of[0], comps.component_of[3]);
}

}  // namespace
}  // namespace volcal
