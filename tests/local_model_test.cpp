#include "runtime/local_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/bfs.hpp"
#include "labels/generators.hpp"
#include "lcl/algorithms/leaf_coloring_algos.hpp"
#include "lcl/problems/leaf_coloring.hpp"
#include "volcal/runtime.hpp"

namespace volcal {
namespace {

TEST(BallView, MatchesGlobalBall) {
  auto inst = make_complete_binary_tree(5, Color::Red, Color::Blue);
  for (NodeIndex v : {NodeIndex{0}, NodeIndex{3}, NodeIndex{30}}) {
    for (std::int64_t r : {0, 1, 2, 4}) {
      Execution exec(inst.graph, inst.ids, v);
      BallView view(exec, r);
      auto expect = ball(inst.graph, v, r);
      EXPECT_EQ(view.size(), static_cast<std::int64_t>(expect.size())) << v << " r=" << r;
      for (NodeIndex w : expect) EXPECT_TRUE(view.contains(w));
      EXPECT_EQ(view.center(), v);
      EXPECT_EQ(exec.distance(), std::min<std::int64_t>(r, exec.distance()));
    }
  }
}

TEST(BallView, ChargesExactlyTheBall) {
  auto inst = make_complete_binary_tree(6, Color::Red, Color::Blue);
  Execution exec(inst.graph, inst.ids, 0);
  BallView view(exec, 3);
  EXPECT_EQ(exec.volume(), view.size());
  EXPECT_EQ(exec.distance(), 3);
}

// Remark 2.3 / Lemma 2.5: a distance-T LOCAL algorithm simulated through
// run_local stays within volume Δ^T + 1.
TEST(RunLocal, VolumeBoundedByDeltaPowT) {
  auto inst = make_complete_binary_tree(8, Color::Red, Color::Blue);
  for (const std::int64_t radius : {1, 2, 3, 5}) {
    Execution exec(inst.graph, inst.ids, 0);
    run_local(exec, radius, [](const BallView& ball) { return ball.size(); });
    EXPECT_LE(exec.distance(), radius);
    EXPECT_LE(static_cast<double>(exec.volume()),
              std::pow(3.0, static_cast<double>(radius)) + 1);
  }
}

// A LOCAL-style LeafColoring solver: gather N_v(log n + c) and decide from
// the ball alone — the Prop. 3.9 algorithm restated in LOCAL form.  Verifies
// Remark 2.3: query algorithms and LOCAL algorithms are interconvertible.
TEST(RunLocal, LeafColoringViaBallView) {
  auto inst = make_complete_binary_tree(7, Color::Red, Color::Blue);
  const auto radius =
      static_cast<std::int64_t>(std::ceil(std::log2(inst.node_count()))) + 2;
  auto result = run_at_all_nodes(inst.graph, inst.ids, [&](Execution& exec) {
    return run_local(exec, radius, [&](const BallView& ball) {
      // Everything within log n + 2 is in the ball, so the nearest-leaf rule
      // can be evaluated offline on the gathered region.
      InstanceSource<ColoredTreeLabeling> src(inst, ball.execution());
      return leafcoloring_nearest_leaf(src);
    });
  });
  LeafColoringProblem problem;
  EXPECT_TRUE(verify_all(problem, inst, result.output).ok);
  // Distance stays within the LOCAL radius even though the inner rule makes
  // its own queries: the ball already contains everything it asks for.
  EXPECT_LE(result.stats.max_distance, radius);
}

}  // namespace
}  // namespace volcal
